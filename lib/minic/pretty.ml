(* Pretty-printer: renders an AST back to MiniC concrete syntax.

   Used to dump generated Juliet-style programs for inspection and by the
   parser round-trip property tests ([parse (print p)] preserves meaning). *)

open Ast

let prec_of_binop = function
  | Mul | Div | Mod -> 9
  | Add | Sub -> 8
  | Shl | Shr -> 7
  | Lt | Le | Gt | Ge -> 6
  | Eq | Ne -> 5
  | Band -> 4
  | Bxor -> 3
  | Bor -> 2
  | Land -> 1
  | Lor -> 0

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Eq -> "==" | Ne -> "!="
  | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Land -> "&&" | Lor -> "||"

let unop_str = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\000' -> Buffer.add_string buf "\\0"
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* [ctx] is the precedence of the surrounding operator; parentheses are
   emitted when the child binds less tightly. *)
let rec pp_expr_prec ctx ppf e =
  match e.e with
  | EInt v -> Format.fprintf ppf "%Ld" v
  | ELong v -> Format.fprintf ppf "%LdL" v
  | EFloat f ->
    if Float.is_integer f && Float.abs f < 1e15 then Format.fprintf ppf "%.1f" f
    else Format.fprintf ppf "%.17g" f
  | EStr s -> Format.fprintf ppf "\"%s\"" (escape_string s)
  | EVar v -> Format.pp_print_string ppf v
  | ELine -> Format.pp_print_string ppf "__LINE__"
  | EUnop (op, a) -> Format.fprintf ppf "%s%a" (unop_str op) (pp_expr_prec 10) a
  | EBinop (op, a, b) ->
    let p = prec_of_binop op in
    let body ppf () =
      Format.fprintf ppf "%a %s %a" (pp_expr_prec p) a (binop_str op)
        (pp_expr_prec (p + 1)) b
    in
    if p < ctx then Format.fprintf ppf "(%a)" body () else body ppf ()
  | ECall (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (pp_expr_prec 0))
      args
  | EIndex (a, i) ->
    Format.fprintf ppf "%a[%a]" (pp_expr_prec 10) a (pp_expr_prec 0) i
  | EDeref a -> Format.fprintf ppf "*%a" (pp_expr_prec 10) a
  | EAddr a -> Format.fprintf ppf "&%a" (pp_expr_prec 10) a
  | EAssign (l, r) ->
    let body ppf () =
      Format.fprintf ppf "%a = %a" (pp_expr_prec 10) l (pp_expr_prec 0) r
    in
    if ctx > 0 then Format.fprintf ppf "(%a)" body () else body ppf ()
  | ECast (t, a) -> Format.fprintf ppf "(%a) %a" pp_typ t (pp_expr_prec 10) a
  | ECond (c, t, f) ->
    Format.fprintf ppf "(%a ? %a : %a)" (pp_expr_prec 1) c (pp_expr_prec 0) t
      (pp_expr_prec 0) f

let pp_expr ppf e = pp_expr_prec 0 ppf e

let rec base_and_array = function
  | Tarr (t, n) ->
    let base, dims = base_and_array t in
    (base, n :: dims)
  | t -> (t, [])

let pp_decl_head ppf (t, name) =
  let base, dims = base_and_array t in
  Format.fprintf ppf "%a %s" pp_typ base name;
  List.iter (fun n -> Format.fprintf ppf "[%d]" n) dims

let rec pp_stmt indent ppf st =
  let pad = String.make indent ' ' in
  match st.s with
  | SExpr e -> Format.fprintf ppf "%s%a;" pad pp_expr e
  | SDecl d ->
    Format.fprintf ppf "%s%s%a" pad
      (if d.dstatic then "static " else "")
      pp_decl_head (d.dtyp, d.dname);
    (match d.dinit with
    | Some e -> Format.fprintf ppf " = %a;" pp_expr e
    | None -> Format.fprintf ppf ";")
  | SIf (c, t, []) ->
    Format.fprintf ppf "%sif (%a) {\n%a\n%s}" pad pp_expr c (pp_block (indent + 2)) t pad
  | SIf (c, t, f) ->
    Format.fprintf ppf "%sif (%a) {\n%a\n%s} else {\n%a\n%s}" pad pp_expr c
      (pp_block (indent + 2)) t pad (pp_block (indent + 2)) f pad
  | SWhile (c, b) ->
    Format.fprintf ppf "%swhile (%a) {\n%a\n%s}" pad pp_expr c (pp_block (indent + 2)) b pad
  | SReturn None -> Format.fprintf ppf "%sreturn;" pad
  | SReturn (Some e) -> Format.fprintf ppf "%sreturn %a;" pad pp_expr e
  | SBreak -> Format.fprintf ppf "%sbreak;" pad
  | SContinue -> Format.fprintf ppf "%scontinue;" pad
  | SPrint (fmt, []) -> Format.fprintf ppf "%sprint(\"%s\");" pad (escape_string fmt)
  | SPrint (fmt, args) ->
    Format.fprintf ppf "%sprint(\"%s\", %a);" pad (escape_string fmt)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_expr)
      args
  | SBlock b -> Format.fprintf ppf "%s{\n%a\n%s}" pad (pp_block (indent + 2)) b pad

and pp_block indent ppf stmts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "\n")
    (pp_stmt indent) ppf stmts

let pp_func ppf f =
  let pp_params ppf = function
    | [] -> Format.pp_print_string ppf "void"
    | ps ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        (fun ppf (t, n) -> pp_decl_head ppf (t, n))
        ppf ps
  in
  Format.fprintf ppf "%a %s(%a) {\n%a\n}" pp_typ f.fret f.fname pp_params f.params
    (pp_block 2) f.body

let pp_global ppf g =
  pp_decl_head ppf (g.gtyp, g.gname);
  match g.ginit with
  | [] -> Format.fprintf ppf ";"
  | [ v ] -> Format.fprintf ppf " = %Ld;" v
  | vs ->
    Format.fprintf ppf " = {%s};" (String.concat ", " (List.map Int64.to_string vs))

let pp_program ppf p =
  List.iter (fun g -> Format.fprintf ppf "%a\n" pp_global g) p.globals;
  if p.globals <> [] then Format.pp_print_newline ppf ();
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "\n\n")
    pp_func ppf p.funcs

let program_to_string p = Format.asprintf "%a\n" pp_program p
let expr_to_string e = Format.asprintf "%a" pp_expr e
let stmt_to_string s = Format.asprintf "%a" (pp_stmt 0) s

(* Typed programs print through erasure: what you see is the MiniC
   source whose re-elaboration is the typed program (used to dump the
   metamorphic twins for inspection). *)
let pp_tprogram ppf tp = pp_program ppf (Tast.erase_program tp)
let tprogram_to_string tp = Format.asprintf "%a\n" pp_tprogram tp
