(* Typed abstract syntax, the output of {!Typecheck} and the input of the
   compiler's lowering phase.

   Differences from {!Ast}:
   - every expression carries its static type;
   - implicit conversions are explicit [TCast] nodes;
   - array-to-pointer decay is an explicit [TDecay] node;
   - string literals and [static] locals have been hoisted to globals, so
     the body only ever refers to [Vglobal] or [Vlocal] variables. *)

type vkind = Vglobal | Vlocal

type texpr = { te : tdesc; tty : Ast.typ; tloc : Ast.loc }

and tdesc =
  | TConstI of int64                 (* typed Tint or Tlong constant *)
  | TConstF of float
  | TStr of string                   (* name of the hoisted string global *)
  | TVar of vkind * string
  | TLine
  | TUnop of Ast.unop * texpr
  | TBinop of Ast.binop * texpr * texpr
  | TCall of string * texpr list
  | TIndex of texpr * texpr          (* pointer/array element access *)
  | TDeref of texpr
  | TAddr of texpr
  | TAssign of texpr * texpr
  | TCast of Ast.typ * texpr
  | TDecay of texpr                  (* array value used as a pointer *)
  | TCond of texpr * texpr * texpr

type tstmt = { ts : tsdesc; tsloc : Ast.loc }

and tsdesc =
  | TSExpr of texpr
  | TSDecl of Ast.typ * string * texpr option (* non-static local *)
  | TSIf of texpr * tblock * tblock
  | TSWhile of texpr * tblock
  | TSReturn of texpr option
  | TSBreak
  | TSContinue
  | TSPrint of string * texpr list
  | TSBlock of tblock

and tblock = tstmt list

type tfunc = {
  tfname : string;
  tparams : (Ast.typ * string) list;
  tfret : Ast.typ;
  tbody : tblock;
}

type tprogram = { tglobals : Ast.global list; tfuncs : tfunc list }

let rec is_lvalue e =
  match e.te with
  | TVar _ | TIndex _ | TDeref _ -> true
  | TCast (_, inner) -> is_lvalue inner
  | TConstI _ | TConstF _ | TStr _ | TLine | TUnop _ | TBinop _ | TCall _
  | TAddr _ | TAssign _ | TDecay _ | TCond _ -> false

(* --- structure-preserving traversal ---

   An open-recursion mapper in the style of Ast_mapper: each hook
   receives the whole mapper so overridden hooks can delegate the
   descent back to the defaults.  [m_stmt] returns a statement *list*,
   so a rewrite can drop a statement or splice in several (the
   metamorphic transforms need both). *)

type mapper = {
  m_expr : mapper -> texpr -> texpr;
  m_stmt : mapper -> tstmt -> tstmt list;
  m_block : mapper -> tblock -> tblock;
  m_func : mapper -> tfunc -> tfunc;
}

let default_expr (m : mapper) (e : texpr) : texpr =
  let sub = m.m_expr m in
  let te' =
    match e.te with
    | (TConstI _ | TConstF _ | TStr _ | TVar _ | TLine) as d -> d
    | TUnop (op, a) -> TUnop (op, sub a)
    | TBinop (op, a, b) -> TBinop (op, sub a, sub b)
    | TCall (f, args) -> TCall (f, List.map sub args)
    | TIndex (a, i) -> TIndex (sub a, sub i)
    | TDeref a -> TDeref (sub a)
    | TAddr a -> TAddr (sub a)
    | TAssign (l, r) -> TAssign (sub l, sub r)
    | TCast (t, a) -> TCast (t, sub a)
    | TDecay a -> TDecay (sub a)
    | TCond (c, t, f) -> TCond (sub c, sub t, sub f)
  in
  { e with te = te' }

let default_stmt (m : mapper) (s : tstmt) : tstmt list =
  let sub = m.m_expr m in
  let ts' =
    match s.ts with
    | TSExpr e -> TSExpr (sub e)
    | TSDecl (t, n, init) -> TSDecl (t, n, Option.map sub init)
    | TSIf (c, a, b) -> TSIf (sub c, m.m_block m a, m.m_block m b)
    | TSWhile (c, b) -> TSWhile (sub c, m.m_block m b)
    | TSReturn e -> TSReturn (Option.map sub e)
    | (TSBreak | TSContinue) as d -> d
    | TSPrint (fmt, args) -> TSPrint (fmt, List.map sub args)
    | TSBlock b -> TSBlock (m.m_block m b)
  in
  [ { s with ts = ts' } ]

let default_block (m : mapper) (b : tblock) : tblock =
  List.concat_map (m.m_stmt m) b

let default_func (m : mapper) (f : tfunc) : tfunc =
  { f with tbody = m.m_block m f.tbody }

let default_mapper =
  {
    m_expr = default_expr;
    m_stmt = default_stmt;
    m_block = default_block;
    m_func = default_func;
  }

let map_program (m : mapper) (tp : tprogram) : tprogram =
  { tp with tfuncs = List.map (m.m_func m) tp.tfuncs }

(* --- erasure back to the untyped AST ---

   Inverse of elaboration, up to the normalizations the type checker
   already performed: string literals stay references to their hoisted
   globals (no [EStr] is reintroduced), static locals stay globals,
   alpha-renamed locals keep their unique names, and the explicit
   [TCast]/[TDecay] nodes become source casts / plain array uses.  The
   result re-typechecks to a [tprogram] that lowers identically, which
   is what lets a transformed typed AST be fed back through the full
   front end. *)

let rec erase_expr (e : texpr) : Ast.expr =
  let d =
    match e.te with
    | TConstI v -> (
      match e.tty with Ast.Tlong -> Ast.ELong v | _ -> Ast.EInt v)
    | TConstF f -> Ast.EFloat f
    | TStr g -> Ast.EVar g
    | TVar (_, n) -> Ast.EVar n
    | TLine -> Ast.ELine
    | TUnop (op, a) -> Ast.EUnop (op, erase_expr a)
    | TBinop (op, a, b) -> Ast.EBinop (op, erase_expr a, erase_expr b)
    | TCall (f, args) -> Ast.ECall (f, List.map erase_expr args)
    | TIndex (a, i) -> Ast.EIndex (erase_expr a, erase_expr i)
    | TDeref a -> Ast.EDeref (erase_expr a)
    | TAddr a -> Ast.EAddr (erase_expr a)
    | TAssign (l, r) -> Ast.EAssign (erase_expr l, erase_expr r)
    | TCast (t, a) -> Ast.ECast (t, erase_expr a)
    | TDecay a -> (erase_expr a).Ast.e (* decay is implicit in the source *)
    | TCond (c, t, f) -> Ast.ECond (erase_expr c, erase_expr t, erase_expr f)
  in
  { Ast.e = d; eloc = e.tloc }

let rec erase_stmt (s : tstmt) : Ast.stmt =
  let d =
    match s.ts with
    | TSExpr e -> Ast.SExpr (erase_expr e)
    | TSDecl (t, n, init) ->
      Ast.SDecl
        {
          Ast.dtyp = t;
          dname = n;
          dinit = Option.map erase_expr init;
          dstatic = false;
        }
    | TSIf (c, a, b) -> Ast.SIf (erase_expr c, erase_block a, erase_block b)
    | TSWhile (c, b) -> Ast.SWhile (erase_expr c, erase_block b)
    | TSReturn e -> Ast.SReturn (Option.map erase_expr e)
    | TSBreak -> Ast.SBreak
    | TSContinue -> Ast.SContinue
    | TSPrint (fmt, args) -> Ast.SPrint (fmt, List.map erase_expr args)
    | TSBlock b -> Ast.SBlock (erase_block b)
  in
  { Ast.s = d; sloc = s.tsloc }

and erase_block (b : tblock) : Ast.block = List.map erase_stmt b

let erase_func (f : tfunc) : Ast.func =
  {
    Ast.fname = f.tfname;
    params = f.tparams;
    fret = f.tfret;
    body = erase_block f.tbody;
    floc =
      (match f.tbody with s :: _ -> s.tsloc | [] -> Ast.no_loc);
  }

let erase_program (tp : tprogram) : Ast.program =
  { Ast.globals = tp.tglobals; funcs = List.map erase_func tp.tfuncs }
