let rotl32 x r =
  Int32.logor (Int32.shift_left x r) (Int32.shift_right_logical x (32 - r))

let c1 = 0xcc9e2d51l
let c2 = 0x1b873593l

let mix_k1 k1 =
  let k1 = Int32.mul k1 c1 in
  let k1 = rotl32 k1 15 in
  Int32.mul k1 c2

let mix_h1 h1 k1 =
  let h1 = Int32.logxor h1 k1 in
  let h1 = rotl32 h1 13 in
  Int32.add (Int32.mul h1 5l) 0xe6546b64l

let fmix32 h =
  let h = Int32.logxor h (Int32.shift_right_logical h 16) in
  let h = Int32.mul h 0x85ebca6bl in
  let h = Int32.logxor h (Int32.shift_right_logical h 13) in
  let h = Int32.mul h 0xc2b2ae35l in
  Int32.logxor h (Int32.shift_right_logical h 16)

let byte s i = Int32.of_int (Char.code (String.unsafe_get s i))

let block s i =
  let b0 = byte s i
  and b1 = byte s (i + 1)
  and b2 = byte s (i + 2)
  and b3 = byte s (i + 3) in
  Int32.logor b0
    (Int32.logor (Int32.shift_left b1 8)
       (Int32.logor (Int32.shift_left b2 16) (Int32.shift_left b3 24)))

let hash32 ?(seed = 0l) s =
  let len = String.length s in
  let nblocks = len / 4 in
  let h1 = ref seed in
  for i = 0 to nblocks - 1 do
    let k1 = block s (i * 4) in
    h1 := mix_h1 !h1 (mix_k1 k1)
  done;
  let tail = nblocks * 4 in
  let k1 = ref 0l in
  let rem = len land 3 in
  if rem >= 3 then k1 := Int32.logxor !k1 (Int32.shift_left (byte s (tail + 2)) 16);
  if rem >= 2 then k1 := Int32.logxor !k1 (Int32.shift_left (byte s (tail + 1)) 8);
  if rem >= 1 then begin
    k1 := Int32.logxor !k1 (byte s tail);
    h1 := Int32.logxor !h1 (mix_k1 !k1)
  end;
  let h1 = Int32.logxor !h1 (Int32.of_int len) in
  fmix32 h1

let hash ?seed s = Int32.to_int (hash32 ?seed s) land 0x3FFFFFFF

(* Streaming interface.  Feeding parts [p1; p2; ...] must produce the
   exact bits of [hash32 (p1 ^ p2 ^ ...)], so pending bytes that do not
   yet fill a 4-byte block are buffered (little-endian, in [tail]) and
   completed by the next [feed]. *)
module Stream = struct
  type t = {
    mutable h1 : int32;
    mutable tail : int;   (* 0-3 pending bytes, little-endian packed *)
    mutable ntail : int;  (* number of pending bytes *)
    mutable total : int;  (* total bytes fed so far *)
  }

  let init ?(seed = 0l) () = { h1 = seed; tail = 0; ntail = 0; total = 0 }

  let feed st s =
    let len = String.length s in
    st.total <- st.total + len;
    let i = ref 0 in
    if st.ntail > 0 then begin
      while st.ntail < 4 && !i < len do
        st.tail <- st.tail lor (Char.code (String.unsafe_get s !i) lsl (8 * st.ntail));
        st.ntail <- st.ntail + 1;
        incr i
      done;
      if st.ntail = 4 then begin
        st.h1 <- mix_h1 st.h1 (mix_k1 (Int32.of_int st.tail));
        st.tail <- 0;
        st.ntail <- 0
      end
    end;
    while !i + 4 <= len do
      st.h1 <- mix_h1 st.h1 (mix_k1 (block s !i));
      i := !i + 4
    done;
    while !i < len do
      st.tail <- st.tail lor (Char.code (String.unsafe_get s !i) lsl (8 * st.ntail));
      st.ntail <- st.ntail + 1;
      incr i
    done

  let finalize st =
    let h1 =
      if st.ntail > 0 then Int32.logxor st.h1 (mix_k1 (Int32.of_int st.tail))
      else st.h1
    in
    fmix32 (Int32.logxor h1 (Int32.of_int st.total))
end

let hash32_parts ?seed parts =
  let st = Stream.init ?seed () in
  List.iter (Stream.feed st) parts;
  Stream.finalize st
