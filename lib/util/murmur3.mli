(** MurmurHash3 (x86 32-bit variant).

    CompDiff-AFL++ compares the outputs of differential binaries by
    checksum; the paper reuses AFL++'s MurmurHash3 for this purpose, so we
    implement the same function. *)

val hash32 : ?seed:int32 -> string -> int32
(** [hash32 ?seed s] is the MurmurHash3_x86_32 hash of [s]. The default
    seed is 0. *)

val hash : ?seed:int32 -> string -> int
(** [hash ?seed s] is [hash32] reinterpreted as a non-negative [int],
    convenient as a hashtable key. *)

(** Incremental hashing.  [finalize] after feeding parts [p1; p2; ...]
    returns exactly [hash32 (p1 ^ p2 ^ ...)] — bit-identical — without
    materializing the concatenation. *)
module Stream : sig
  type t

  val init : ?seed:int32 -> unit -> t
  val feed : t -> string -> unit
  val finalize : t -> int32
end

val hash32_parts : ?seed:int32 -> string list -> int32
(** [hash32_parts parts] is [hash32 (String.concat "" parts)] computed
    without allocating the concatenation. *)
