(** A small work pool built on OCaml 5 domains.

    The pool owns [jobs - 1] worker domains; the domain that submits a
    batch participates in executing it ("caller helps"), so a pool with
    [jobs = 1] degenerates to plain sequential execution with no domain
    spawned, and nested [map] calls issued from inside a task cannot
    deadlock: the nesting task drains its own batch while workers help
    opportunistically.

    All functions are safe to call from any domain. *)

type t
(** A handle to a pool of worker domains. *)

val auto_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: one slot is left
    for the submitting domain itself. *)

val default_jobs : unit -> int
(** Job count used when none is given explicitly: the value of
    {!set_default_jobs} if called, else the [COMPDIFF_JOBS] environment
    variable if set to a positive integer, else {!auto_jobs}. *)

val set_default_jobs : int -> unit
(** Override {!default_jobs} for the rest of the process (clamped to at
    least 1).  If the shared global pool already exists with a different
    size it is drained and rebuilt lazily on next use. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (default
    {!default_jobs}). *)

val jobs : t -> int
(** Parallelism of the pool, including the submitting domain. *)

val global : unit -> t
(** The shared global pool {!map}/{!run} default to (created on first
    use, shut down at exit). *)

val quiesce : unit -> unit
(** Shut down the shared global pool if it exists; it is rebuilt lazily
    on the next {!map}/{!run}.  Idle worker domains still participate in
    every stop-the-world minor collection, so a single-domain
    allocation-heavy phase (e.g. a benchmark) can reclaim real time by
    quiescing the pool first. *)

val pending : t -> int
(** Number of queued helper tasks not yet claimed by a worker — a
    utilization signal for telemetry ([0] = the pool is keeping up). *)

val shutdown : t -> unit
(** Signal the workers to stop and join them.  Idempotent.  A pool keeps
    working after [shutdown] — batches then run entirely on the calling
    domain. *)

val map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element, possibly in parallel, and
    returns the results in input order.  Uses the shared global pool
    when [?pool] is omitted (created on first use, shut down at exit).
    If one or more applications raise, every task still runs to
    completion and the exception of the smallest-index failure is
    re-raised (with its original backtrace) on the calling domain. *)

val map_array : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
(** Array variant of {!map}. *)

val run : ?pool:t -> (unit -> 'a) list -> 'a list
(** [run thunks] executes the thunks, possibly in parallel; results in
    input order.  Same failure contract as {!map}. *)
