(* Caller-helps domain pool.

   A batch ([map]/[run]) is a shared claim counter over an array of
   items.  The submitting domain enqueues up to [workers] helper tasks
   (each a loop that claims items until the batch is drained), then
   claims items itself.  Because the caller always drains the batch it
   submitted, a pool of size 1 runs everything inline, and a task that
   submits a nested batch makes progress even if every worker is busy.

   Results and errors are written to per-index slots before the atomic
   increment of the completion counter, so the submitter (which waits
   for the counter to reach the batch size) reads them race-free. *)

type t = {
  mutex : Mutex.t;
  cond : Condition.t;                  (* queue activity + batch completion *)
  queue : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable stopping : bool;
  total : int;                         (* parallelism incl. the caller *)
}

let jobs t = t.total

let auto_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let forced_jobs : int option Atomic.t = Atomic.make None

let default_jobs () =
  match Atomic.get forced_jobs with
  | Some n -> n
  | None -> (
      match Sys.getenv_opt "COMPDIFF_JOBS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some n when n >= 1 -> n
          | _ -> auto_jobs ())
      | None -> auto_jobs ())

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.stopping then None
    else begin
      Condition.wait t.cond t.mutex;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock t.mutex
  | Some task ->
      Mutex.unlock t.mutex;
      task ();
      worker_loop t

let create ?jobs () =
  let total = max 1 (match jobs with Some n -> n | None -> default_jobs ()) in
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      workers = [];
      stopping = false;
      total;
    }
  in
  t.workers <-
    List.init (total - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.cond;
  let ws = t.workers in
  t.workers <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join ws

(* Shared global pool, built on first use. *)
let global_lock = Mutex.create ()
let global_pool : t option ref = ref None
let exit_hooked = ref false

let global () =
  Mutex.lock global_lock;
  let t =
    match !global_pool with
    | Some t -> t
    | None ->
        let t = create () in
        global_pool := Some t;
        if not !exit_hooked then begin
          exit_hooked := true;
          at_exit (fun () ->
              Mutex.lock global_lock;
              let p = !global_pool in
              global_pool := None;
              Mutex.unlock global_lock;
              Option.iter shutdown p)
        end;
        t
  in
  Mutex.unlock global_lock;
  t

let quiesce () =
  Mutex.lock global_lock;
  let p = !global_pool in
  global_pool := None;
  Mutex.unlock global_lock;
  Option.iter shutdown p

(* queued-but-unclaimed helper tasks: a utilization signal for the serve
   daemon's stats endpoint (0 means the pool is keeping up) *)
let pending t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

let set_default_jobs n =
  let n = max 1 n in
  Atomic.set forced_jobs (Some n);
  Mutex.lock global_lock;
  let stale =
    match !global_pool with
    | Some t when t.total <> n ->
        global_pool := None;
        Some t
    | _ -> None
  in
  Mutex.unlock global_lock;
  Option.iter shutdown stale

type 'b slot = Empty | Ok_ of 'b | Err of exn * Printexc.raw_backtrace

let map_array ?pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if n = 1 then [| f xs.(0) |]
  else begin
    let t = match pool with Some p -> p | None -> global () in
    let results = Array.make n Empty in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let step () =
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then false
      else begin
        (results.(i) <-
           (try Ok_ (f xs.(i))
            with e -> Err (e, Printexc.get_raw_backtrace ())));
        if Atomic.fetch_and_add completed 1 = n - 1 then begin
          (* wake the submitter (and any idle worker, harmlessly) *)
          Mutex.lock t.mutex;
          Condition.broadcast t.cond;
          Mutex.unlock t.mutex
        end;
        true
      end
    in
    let nhelpers = min (n - 1) (t.total - 1) in
    if nhelpers > 0 then begin
      Mutex.lock t.mutex;
      for _ = 1 to nhelpers do
        Queue.add (fun () -> while step () do () done) t.queue
      done;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex
    end;
    (* the submitting domain helps drain its own batch *)
    while step () do () done;
    (* wait for items claimed by workers that are still in flight *)
    if Atomic.get completed < n then begin
      Mutex.lock t.mutex;
      while Atomic.get completed < n do
        Condition.wait t.cond t.mutex
      done;
      Mutex.unlock t.mutex
    end;
    Array.map
      (function
        | Ok_ v -> v
        | Err (e, bt) -> Printexc.raise_with_backtrace e bt
        | Empty -> assert false)
      results
  end

let map ?pool f xs = Array.to_list (map_array ?pool f (Array.of_list xs))
let run ?pool thunks = map ?pool (fun f -> f ()) thunks
