(* Controlled single-UB injection.

   Takes a clean {!Effgen} program and plants exactly one labeled defect
   at one of its recorded injection sites, returning the ground-truth
   class. Each recipe is designed against the compiler model's actual
   policies so that the defect is (a) reachable on every run, (b) the
   *only* UB in the program, and (c) guaranteed to make the ten
   implementations disagree:

   - [Overflow]: an overflow-style bounds guard [w + INT_MAX > w] with
     [w >= 1]. Unoptimized builds evaluate the wrapped (negative) sum
     and take the else-branch; builds with [ub_branch_fold] rewrite the
     comparison to [INT_MAX > 0] and take the then-branch.
   - [Uninit]: an uninitialized scalar that is branched on (what the
     MSan model can see) and printed (uninit reads come from the
     profile's [uninit_policy] plus per-family stack junk, so the
     printed value differs across implementations).
   - [Oob]: a read one past the end of a *local* array, printed. The
     cell is mapped frame memory whose content depends on slot order,
     slot gap and stack seed — all family-differing — and sits inside
     the ASan model's redzone.
   - [Ptrcmp]: a relational comparison of two distinct stack objects.
     [slots_reversed] flips their address order on one family only.
   - [Divzero]: a *dead* division by zero. Unoptimized builds execute
     it and trap; optimizing builds promote the dead result and delete
     the division (constant folding deliberately refuses to fold
     division by zero, dead-code elimination deletes it).

   Sites are the empty-block markers of the clean program; injection
   replaces exactly one marker with the defect block, so clean and
   injected twins differ in nothing else. *)

open Minic
module B = Minic.Builder
module Rng = Cdutil.Rng

type ub_class = Overflow | Uninit | Oob | Ptrcmp | Divzero

let all_classes = [ Overflow; Uninit; Oob; Ptrcmp; Divzero ]

let class_name = function
  | Overflow -> "signed-overflow"
  | Uninit -> "uninit-read"
  | Oob -> "oob-index"
  | Ptrcmp -> "ptr-compare"
  | Divzero -> "div-by-zero"

(* the Finding kinds a static tool must report to count as a true
   positive for this class (the Table 3 row the class belongs to) *)
let finding_kinds = function
  | Overflow -> [ Staticcheck.Finding.Int_error ]
  | Uninit -> [ Staticcheck.Finding.Uninit ]
  | Oob -> [ Staticcheck.Finding.Mem_error ]
  | Ptrcmp -> [ Staticcheck.Finding.Ptr_sub ]
  | Divzero -> [ Staticcheck.Finding.Div_zero ]

(* a distinctive substring of the defect's source line, used to recover
   the ground-truth line number from the pretty-printed program *)
let line_marker = function
  | Overflow -> "inj_w + 2147483647"
  | Uninit -> "inj_u >"
  | Oob -> "inj_oob"
  | Ptrcmp -> "inj_p < inj_q"
  | Divzero -> "/ inj_z"

(* an in-scope int expression at the site, or an input-derived fallback
   (peek is pure and does not disturb the stream) *)
let site_src rng (site : Effgen.site) : Ast.expr =
  match site.Effgen.site_scalars with
  | [] -> B.( &: ) (B.call "peek" [ B.int 0 ]) (B.int 7)
  | scalars -> B.var (fst (Rng.choose_list rng scalars))

let defect_stmts rng (site : Effgen.site) (cls : ub_class) : Ast.stmt list =
  match cls with
  | Overflow ->
    (* input-derived, so no constant-folding pass can pre-evaluate the
       wrapped comparison: the divergence must come from [ub_branch_fold]
       rewriting the guard, not from folding both sides the same way *)
    let w =
      B.( +: )
        (B.( &: ) (B.call "peek" [ B.int 0 ]) (B.int 7))
        (B.int 1)
    in
    [
      B.decl Ast.Tint "inj_w" ~init:w;
      B.if_
        (B.( >: ) (B.( +: ) (B.var "inj_w") (B.int 2147483647)) (B.var "inj_w"))
        [ B.print "inj_o yes %d\n" [ B.var "inj_w" ] ]
        [ B.print "inj_o no\n" [] ];
    ]
  | Uninit ->
    [
      B.decl Ast.Tint "inj_u";
      B.if_
        (B.( >: ) (B.var "inj_u") (B.int 2))
        [ B.print "inj_u hi\n" [] ]
        [ B.print "inj_u lo\n" [] ];
      B.print "inj_uv %d\n" [ B.var "inj_u" ];
    ]
  | Oob ->
    (* reuse a local array when the site has one; otherwise synthesize a
       fully initialized one (the OOB read must stay the only defect).
       Globals are useless here: their neighbours are zero-initialized
       identically everywhere. *)
    let arr, len, prelude =
      match site.Effgen.site_arrays with
      | (a, len) :: _ when String.length a >= 3 && String.sub a 0 3 = "buf" ->
        (a, len, [])
      | _ ->
        ( "inj_b",
          4,
          B.decl_arr Ast.Tint "inj_b" 4
          :: List.init 4 (fun i ->
                 B.set_idx (B.var "inj_b") (B.int i) (B.int (i + 1))) )
    in
    prelude
    @ [ B.print "inj_oob %d\n" [ B.idx (B.var arr) (B.int len) ] ]
  | Ptrcmp ->
    [
      B.decl_arr Ast.Tint "inj_p" 2;
      B.set_idx (B.var "inj_p") (B.int 0) (B.int 1);
      B.set_idx (B.var "inj_p") (B.int 1) (B.int 2);
      B.decl_arr Ast.Tint "inj_q" 2;
      B.set_idx (B.var "inj_q") (B.int 0) (B.int 3);
      B.set_idx (B.var "inj_q") (B.int 1) (B.int 4);
      B.if_
        (B.( <: ) (B.var "inj_p") (B.var "inj_q"))
        [ B.print "inj_c 1\n" [] ]
        [ B.print "inj_c 0\n" [] ];
    ]
  | Divzero ->
    [
      B.decl Ast.Tint "inj_z" ~init:(B.int 0);
      B.decl Ast.Tint "inj_d" ~init:(B.( /: ) (site_src rng site) (B.var "inj_z"));
    ]

(* replace the [n]-th empty-block marker of the program with [stmts];
   markers are the only empty blocks the generator emits *)
let splice_at (p : Ast.program) (n : int) (stmts : Ast.stmt list) : Ast.program
    =
  let count = ref (-1) in
  let rec stmt (s : Ast.stmt) : Ast.stmt =
    match s.Ast.s with
    | Ast.SBlock [] ->
      incr count;
      if !count = n then { s with Ast.s = Ast.SBlock stmts } else s
    | Ast.SBlock b -> { s with Ast.s = Ast.SBlock (List.map stmt b) }
    | Ast.SIf (c, t, f) ->
      { s with Ast.s = Ast.SIf (c, List.map stmt t, List.map stmt f) }
    | Ast.SWhile (c, b) -> { s with Ast.s = Ast.SWhile (c, List.map stmt b) }
    | Ast.SExpr _ | Ast.SDecl _ | Ast.SReturn _ | Ast.SBreak | Ast.SContinue
    | Ast.SPrint _ ->
      s
  in
  {
    p with
    Ast.funcs =
      List.map
        (fun f -> { f with Ast.body = List.map stmt f.Ast.body })
        p.Ast.funcs;
  }

type injected = {
  inj_prog : Ast.program;
  cls : ub_class;
  site : Effgen.site;
  marker : string; (* substring locating the defect line in the source *)
}

(* [inject ~seed r cls]: plant one [cls] defect at a deterministic
   rng-chosen site of the clean program [r.prog] *)
let inject ~seed (r : Effgen.result) (cls : ub_class) : injected =
  let rng = Rng.create (Rng.mix seed 0x1b7) in
  let site = Rng.choose_list rng r.Effgen.sites in
  let stmts = defect_stmts rng site cls in
  {
    inj_prog = splice_at r.Effgen.prog site.Effgen.site_id stmts;
    cls;
    site;
    marker = line_marker cls;
  }

(* ground-truth line: where the defect landed in the printed source *)
let defect_line ~(src : string) (inj : injected) : int =
  let marker = inj.marker in
  let mlen = String.length marker in
  let n = String.length src in
  let rec find i =
    if i + mlen > n then None
    else if String.sub src i mlen = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> 0
  | Some pos ->
    let line = ref 1 in
    String.iteri (fun i c -> if i < pos && c = '\n' then incr line) src;
    !line
