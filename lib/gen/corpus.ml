(* Labeled-corpus driver: the honest version of Table 3.

   Sweeps N generated clean/injected pairs through the oracle, the three
   sanitizer models and the four static tools, and scores every tool
   against the injector's ground truth. Because the clean twin is UB-free
   by construction and the injected twin contains exactly one labeled
   defect, true/false positives and false negatives are *measured*, not
   assumed:

   - TP: the tool flags the injected twin (for static tools, with a
     finding kind matching the defect class);
   - FN: it stays silent on the injected twin;
   - FP: it flags the clean twin.

   An oracle false positive on a clean twin would disprove the
   generator's soundness argument (DESIGN.md S14), so the driver reports
   clean-twin divergences separately and treats any nonzero count as a
   failure. *)

module Rng = Cdutil.Rng
module Oracle = Compdiff.Oracle
module San = Sanitizers.San
module Tools = Staticcheck.Static_tools

type pair = {
  seed : int;
  cls : Inject.ub_class;
  line : int; (* ground-truth defect line in [inj_src] *)
  clean_src : string;
  inj_src : string;
  clean_tp : Minic.Tast.tprogram;
  inj_tp : Minic.Tast.tprogram;
}

(* classes cycle with the seed, so any contiguous seed range is
   balanced across the five Table 3 classes *)
let class_for_seed seed =
  List.nth Inject.all_classes (abs seed mod List.length Inject.all_classes)

(* Generation goes through concrete syntax: the clean program is
   pretty-printed and re-elaborated, so a corpus run also exercises the
   printer/parser round-trip end to end (the generator emits source). *)
let make ?cls ~seed () : (pair, string) result =
  let r = Effgen.generate ~seed in
  let cls = match cls with Some c -> c | None -> class_for_seed seed in
  let clean_src = Minic.Pretty.program_to_string r.Effgen.prog in
  match Minic.frontend_of_source clean_src with
  | Error m -> Error (Printf.sprintf "seed %d clean twin: %s" seed m)
  | Ok clean_tp -> (
    let inj = Inject.inject ~seed r cls in
    let inj_src = Minic.Pretty.program_to_string inj.Inject.inj_prog in
    match Minic.frontend_of_source inj_src with
    | Error m ->
      Error
        (Printf.sprintf "seed %d injected twin (%s): %s" seed
           (Inject.class_name cls) m)
    | Ok inj_tp ->
      Ok
        {
          seed;
          cls;
          line = Inject.defect_line ~src:inj_src inj;
          clean_src;
          inj_src;
          clean_tp;
          inj_tp;
        })

(* structured inputs swept per pair (and used to seed the fuzzer): the
   empty input, a fixed byte, and a seed-derived random payload *)
let inputs_for (p : pair) : string list =
  let rng = Rng.create (Rng.mix p.seed 0x5eed) in
  [ ""; "A"; Bytes.to_string (Rng.bytes rng 8) ]

(* ---------- per-pair evaluation ---------- *)

type pair_eval = {
  pair : pair;
  clean_diverged : bool; (* generator-soundness violation if true *)
  oracle_hit : bool;
  (* per tool: flagged the injected twin, flagged the clean twin *)
  sanitizers : (San.kind * (bool * bool)) list;
  statics : (Tools.tool * (bool * bool)) list;
}

let evaluate_pair ?session ?(fuel = 100_000) (p : pair) : pair_eval =
  let inputs = inputs_for p in
  let oracle_clean = Oracle.create ?session ~fuel p.clean_tp in
  let clean_diverged = Oracle.detects oracle_clean ~inputs in
  let oracle_inj = Oracle.create ?session ~fuel p.inj_tp in
  let oracle_hit = Oracle.detects oracle_inj ~inputs in
  let inj_build = San.build ?session p.inj_tp in
  let clean_build = San.build ?session p.clean_tp in
  let sanitizers =
    List.map
      (fun k ->
        ( k,
          ( San.detects_built ~fuel k inj_build ~inputs,
            San.detects_built ~fuel k clean_build ~inputs ) ))
      San.all
  in
  let kinds = Inject.finding_kinds p.cls in
  let inj_ast = Minic.Tast.erase_program p.inj_tp in
  let clean_ast = Minic.Tast.erase_program p.clean_tp in
  let statics =
    List.map
      (fun t ->
        ( t,
          ( Tools.flags_kinds t inj_ast kinds,
            Tools.flags_kinds t clean_ast kinds ) ))
      Tools.all
  in
  { pair = p; clean_diverged; oracle_hit; sanitizers; statics }

let evaluate ?session ?(jobs = 1) ?fuel (pairs : pair list) : pair_eval list =
  let eval p = evaluate_pair ?session ?fuel p in
  if jobs > 1 then Cdutil.Pool.map eval pairs else List.map eval pairs

(* cross-validation: on every swept input, the deduped/pooled oracle
   verdict must be structurally identical to the sequential naive one,
   on both twins (the bench gate's naive-vs-session equality) *)
let naive_agrees ?session ?(fuel = 100_000) (p : pair) : bool =
  let inputs = inputs_for p in
  let agree tp =
    let o = Oracle.create ?session ~fuel tp in
    List.for_all
      (fun input -> Oracle.check o ~input = Oracle.check_naive o ~input)
      inputs
  in
  agree p.clean_tp && agree p.inj_tp

(* generated programs as structured fuzzer seeds: a CompDiff-AFL++
   campaign on the injected twin, seeded with the pair's inputs *)
let fuzz_divergence ?(max_execs = 400) (p : pair) : bool =
  let c =
    Fuzz.Compdiff_afl.run
      ~config:
        {
          Fuzz.Compdiff_afl.default_config with
          Fuzz.Compdiff_afl.max_execs;
          seeds = inputs_for p;
        }
      p.inj_tp
  in
  Fuzz.Compdiff_afl.found_divergence c

(* ---------- aggregation ---------- *)

type counts = { mutable tp : int; mutable fp : int; mutable fn : int }

type report = {
  pairs : int;
  gen_failures : int;
  clean_divergences : int;
  rows : (string * counts) list; (* tool order: oracle, sanitizers, statics *)
  per_class : (Inject.ub_class * counts) list; (* oracle, by defect class *)
}

let tally (hit, fp) (c : counts) =
  if hit then c.tp <- c.tp + 1 else c.fn <- c.fn + 1;
  if fp then c.fp <- c.fp + 1

let report ?(gen_failures = 0) (evals : pair_eval list) : report =
  let fresh () = { tp = 0; fp = 0; fn = 0 } in
  let oracle = fresh () in
  let san_rows = List.map (fun k -> (k, fresh ())) San.all in
  let static_rows = List.map (fun t -> (t, fresh ())) Tools.all in
  let per_class = List.map (fun c -> (c, fresh ())) Inject.all_classes in
  let clean_divergences = ref 0 in
  List.iter
    (fun e ->
      if e.clean_diverged then incr clean_divergences;
      tally (e.oracle_hit, e.clean_diverged) oracle;
      tally (e.oracle_hit, e.clean_diverged) (List.assoc e.pair.cls per_class);
      List.iter (fun (k, r) -> tally r (List.assoc k san_rows)) e.sanitizers;
      List.iter (fun (t, r) -> tally r (List.assoc t static_rows)) e.statics)
    evals;
  {
    pairs = List.length evals;
    gen_failures;
    clean_divergences = !clean_divergences;
    rows =
      ("CompDiff", oracle)
      :: List.map (fun (k, c) -> (San.name k, c)) san_rows
      @ List.map (fun (t, c) -> (Tools.name t, c)) static_rows;
    per_class;
  }

let report_to_string (r : report) : string =
  let b = Buffer.create 1024 in
  Printf.bprintf b "labeled corpus: %d pairs (typecheck failures: %d)\n"
    r.pairs r.gen_failures;
  Printf.bprintf b "clean-twin divergences: %d\n\n" r.clean_divergences;
  Printf.bprintf b "%-16s %5s %5s %5s %8s\n" "tool" "TP" "FP" "FN" "det%";
  List.iter
    (fun (name, c) ->
      let det =
        if c.tp + c.fn = 0 then 0.
        else 100. *. float_of_int c.tp /. float_of_int (c.tp + c.fn)
      in
      Printf.bprintf b "%-16s %5d %5d %5d %7.1f%%\n" name c.tp c.fp c.fn det)
    r.rows;
  Buffer.add_string b "\nper-class (CompDiff):\n";
  List.iter
    (fun (cls, c) ->
      if c.tp + c.fn > 0 then
        Printf.bprintf b "  %-16s %d/%d detected\n" (Inject.class_name cls)
          c.tp (c.tp + c.fn))
    r.per_class;
  Buffer.contents b

(* measured oracle miss rate on the injected corpus (the bench gate's
   reported FN rate) *)
let oracle_fn_rate (r : report) : float =
  match List.assoc_opt "CompDiff" r.rows with
  | Some c when c.tp + c.fn > 0 ->
    float_of_int c.fn /. float_of_int (c.tp + c.fn)
  | _ -> 0.
