(* Effect-typed program generation (the efftester approach applied to
   MiniC): read the type-and-effect relation bottom-up, goal-directed,
   so that every generated program is well typed and free of undefined
   behaviour *by construction*.

   The effects tracked are exactly the ones whose violation the oracle's
   ten implementations are free to resolve differently (the Table 5
   unspecified/undefined behaviours of the compiler model):

   - {b value ranges}: every integer expression carries a static
     interval; operands of overflow-prone operations are masked
     ([e & m] is well defined on any int) so no signed operation can
     exceed int range. Division and modulus denominators are rewritten
     to [(e & 15) + 1], which is positive and nonzero. Shift counts are
     small constants, shift operands are masked nonnegative.
   - {b init-state}: every variable is declared with an initializer;
     every local array is filled before it can be read. (Globals are
     zero-initialized by the language.)
   - {b pointer provenance}: arrays are only indexed, with the index
     masked to a power of two no larger than the length, so every
     access stays inside its object; pointers are never compared,
     cast, subtracted or printed, so object layout cannot leak.
   - {b divergence and output}: the only loops are counted loops with
     constant trip counts, so every program terminates with bounded
     output under every implementation.
   - {b evaluation order}: all generated expressions are pure ([peek]
     reads the input without consuming it); the one effectful builtin
     used, [getchar ()], appears only as the whole right-hand side of a
     dedicated declaration, so argument- and operand-order differences
     between implementations are unobservable.

   Statements generated inside a branch or loop body only assign masked
   values; a scalar's interval is widened to the hull of its old range
   and the mask range at the assignment, which stays sound on the path
   that skips or repeats the assignment.

   The generator additionally records {b injection sites}: empty block
   statements [{ }] placed between top-level statements of [main]
   (always-executed positions), each with a snapshot of the variables in
   scope. {!Inject} later replaces exactly one marker with a labeled
   defect; the clean twin keeps the markers, which are no-ops. *)

open Minic
module B = Minic.Builder
module Rng = Cdutil.Rng

type interval = { lo : int; hi : int }

let itv lo hi = { lo; hi }
let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }
let within a b = a.lo >= b.lo && a.hi <= b.hi

(* global invariant: every expression interval stays inside [big];
   masked assignments stay inside [masked] *)
let big = itv (-0x400000) 0x400000 (* +-2^22 *)
let masked = itv 0 4095

type scalar = {
  sname : string;
  mutable srange : interval;
  sconst : bool; (* not an assignment target (loop counters) *)
}
type array_ = { aname : string; alen : int }

type site = {
  site_id : int;
  site_scalars : (string * interval) list; (* in-scope ints, snapshot *)
  site_arrays : (string * int) list;       (* in-scope int arrays *)
}

type result = {
  prog : Ast.program;
  sites : site list; (* marker order: the n-th empty block in [main] *)
}

type g = {
  rng : Rng.t;
  mutable scalars : scalar list;
  mutable arrays : array_ list;
  mutable fresh : int;
  mutable sites_rev : site list;
  mutable helper : (string * interval) option; (* pure int(int,int) helper *)
}

let fresh g prefix =
  let n = g.fresh in
  g.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

(* ---------- expressions ---------- *)

(* [e & m]: well defined for any int operand, lands in [0, m] *)
let mask_to (e, iv) m =
  if within iv (itv 0 m) then (e, iv) else (B.( &: ) e (B.int m), itv 0 m)

let lit g =
  let k = Rng.int_in g.rng (-64) 256 in
  (B.int k, itv k k)

let leaf g =
  let scalars = g.scalars in
  match Rng.int g.rng 4 with
  | 0 | 1 when scalars <> [] ->
    let s = Rng.choose_list g.rng scalars in
    (B.var s.sname, s.srange)
  | 2 ->
    (* peek is pure: it reads an input byte without consuming it, so it
       is safe in any expression position (no evaluation-order effect) *)
    let i = Rng.int g.rng 8 in
    (B.call "peek" [ B.int i ], itv (-1) 255)
  | _ -> lit g

let rec gen_expr g depth : Ast.expr * interval =
  if depth <= 0 then leaf g
  else
    match Rng.int g.rng 12 with
    | 0 | 1 -> leaf g
    | 2 ->
      let a, ia = gen_expr g (depth - 1) in
      (match Rng.int g.rng 3 with
      | 0 -> (B.neg a, itv (-ia.hi) (-ia.lo))
      | 1 -> (B.lnot a, itv 0 1)
      | _ -> (B.bnot a, itv (-ia.hi - 1) (-ia.lo - 1)))
    | 3 | 4 | 5 -> gen_binop g depth
    | 6 when g.arrays <> [] ->
      (* in-bounds read: index masked to a power of two <= length *)
      let a = Rng.choose_list g.rng g.arrays in
      let i, _ = mask_to (gen_expr g (depth - 1)) (a.alen - 1) in
      (B.idx (B.var a.aname) i, masked)
    | 7 ->
      let c, _ = gen_expr g (depth - 1) in
      let t, it = gen_expr g (depth - 1) in
      let f, if_ = gen_expr g (depth - 1) in
      (B.cond c t f, hull it if_)
    | 8 -> (
      match g.helper with
      | Some (fname, ret) ->
        let a, _ = mask_to (gen_expr g (depth - 1)) 255 in
        let b, _ = mask_to (gen_expr g (depth - 1)) 255 in
        (B.call fname [ a; b ], ret)
      | None -> gen_binop g depth)
    | _ -> gen_binop g depth

and gen_binop g depth : Ast.expr * interval =
  let a, ia = gen_expr g (depth - 1) in
  let b, ib = gen_expr g (depth - 1) in
  match Rng.int g.rng 9 with
  | 0 ->
    let r = itv (ia.lo + ib.lo) (ia.hi + ib.hi) in
    if within r big then (B.( +: ) a b, r)
    else
      let a, ia = mask_to (a, ia) 0xffff and b, ib = mask_to (b, ib) 0xffff in
      (B.( +: ) a b, itv (ia.lo + ib.lo) (ia.hi + ib.hi))
  | 1 ->
    let r = itv (ia.lo - ib.hi) (ia.hi - ib.lo) in
    if within r big then (B.( -: ) a b, r)
    else
      let a, ia = mask_to (a, ia) 0xffff and b, ib = mask_to (b, ib) 0xffff in
      (B.( -: ) a b, itv (ia.lo - ib.hi) (ia.hi - ib.lo))
  | 2 ->
    (* masked multiply: products stay far below int range even after
       operand intervals later widen to the masked hull *)
    let a, _ = mask_to (a, ia) 255 and b, _ = mask_to (b, ib) 255 in
    (B.( *: ) a b, itv 0 (255 * 255))
  | 3 ->
    let d = B.( +: ) (fst (mask_to (b, ib) 15)) (B.int 1) in
    let m = max (abs ia.lo) (abs ia.hi) in
    (B.( /: ) a d, itv (-m) m)
  | 4 ->
    let d = B.( +: ) (fst (mask_to (b, ib) 15)) (B.int 1) in
    (B.( %: ) a d, itv (-15) 15)
  | 5 ->
    let a, _ = mask_to (a, ia) 1023 in
    let k = Rng.int g.rng 5 in
    (B.( <<: ) a (B.int k), itv 0 (1023 lsl k))
  | 6 ->
    let a, _ = mask_to (a, ia) 4095 in
    let k = Rng.int g.rng 5 in
    (B.( >>: ) a (B.int k), itv 0 4095)
  | 7 ->
    let a, _ = mask_to (a, ia) 4095 and b, _ = mask_to (b, ib) 4095 in
    let op = Rng.choose_list g.rng [ B.( &: ); B.( |: ); B.( ^: ) ] in
    (op a b, itv 0 4095)
  | _ ->
    let op =
      Rng.choose_list g.rng
        [ B.( <: ); B.( <=: ); B.( >: ); B.( >=: ); B.( ==: ); B.( <>: );
          B.( &&: ); B.( ||: ) ]
    in
    (op a b, itv 0 1)

let gen_cond g = fst (gen_expr g 2)

(* ---------- statements ---------- *)

(* [guarded] is true inside a branch or loop body: assignments there
   must be masked and only widen the target's interval *)
let assign_scalar g ~guarded =
  (* loop counters are readable but never assignment targets: a body
     write to its own counter could defeat the constant trip count and
     the termination argument with it *)
  match List.filter (fun s -> not s.sconst) g.scalars with
  | [] -> None
  | scalars ->
    let s = Rng.choose_list g.rng scalars in
    let e, iv = gen_expr g (Rng.int_in g.rng 1 3) in
    if guarded then begin
      let e, iv = mask_to (e, iv) 4095 in
      s.srange <- hull s.srange iv;
      Some (B.set s.sname e)
    end
    else begin
      (* always-executed straight-line assignment: the new interval
         replaces the old one *)
      let e, iv = if within iv big then (e, iv) else mask_to (e, iv) 0xffff in
      s.srange <- iv;
      Some (B.set s.sname e)
    end

let decl_scalar g =
  let name = fresh g "v" in
  let e, iv = gen_expr g (Rng.int_in g.rng 1 3) in
  let e, iv = if within iv big then (e, iv) else mask_to (e, iv) 0xffff in
  g.scalars <- { sname = name; srange = iv; sconst = false } :: g.scalars;
  B.decl Ast.Tint name ~init:e

let decl_getchar g =
  (* the only effectful builtin used, and only as a whole statement-level
     right-hand side: one consumption per statement, order-independent *)
  let name = fresh g "c" in
  g.scalars <- { sname = name; srange = itv 0 255; sconst = false } :: g.scalars;
  B.decl Ast.Tint name ~init:(B.( &: ) (B.call "getchar" []) (B.int 255))

(* fill loop: every cell written before any read is possible *)
let decl_array g =
  let name = fresh g "buf" in
  let len = Rng.choose_list g.rng [ 4; 8; 16 ] in
  let i = fresh g "i" in
  let c = Rng.int_in g.rng 1 31 and d = Rng.int_in g.rng 0 255 in
  let fill =
    B.for_up i (B.int 0) (B.int len)
      [
        B.set_idx (B.var name) (B.var i)
          (B.( &: ) (B.( +: ) (B.( *: ) (B.var i) (B.int c)) (B.int d)) (B.int 255));
      ]
  in
  g.arrays <- { aname = name; alen = len } :: g.arrays;
  [ B.decl_arr Ast.Tint name len; fill ]

let store_array g =
  match g.arrays with
  | [] -> None
  | arrays ->
    let a = Rng.choose_list g.rng arrays in
    let i, _ = mask_to (gen_expr g 2) (a.alen - 1) in
    let e, _ = mask_to (gen_expr g (Rng.int_in g.rng 1 3)) 4095 in
    Some (B.set_idx (B.var a.aname) i e)

let gen_print g =
  match Rng.int g.rng 3 with
  | 0 ->
    let e, _ = gen_expr g 2 in
    B.print (Printf.sprintf "t%d %%d\n" (Rng.int g.rng 10)) [ e ]
  | 1 ->
    (* two arguments, both pure: evaluation order cannot show *)
    let a, _ = gen_expr g 2 and b, _ = gen_expr g 2 in
    B.print (Printf.sprintf "p%d %%d %%d\n" (Rng.int g.rng 10)) [ a; b ]
  | _ -> B.print (Printf.sprintf "m%d\n" (Rng.int g.rng 10)) []

(* enter a nested scope: new declarations vanish on exit, interval
   widenings on pre-existing scalars persist (they are record mutations) *)
let scoped g f =
  let saved_scalars = g.scalars and saved_arrays = g.arrays in
  let r = f () in
  g.scalars <- saved_scalars;
  g.arrays <- saved_arrays;
  r

let rec gen_stmts g ~guarded ~depth n : Ast.stmt list =
  List.concat (List.init n (fun _ -> gen_stmt g ~guarded ~depth))

and gen_stmt g ~guarded ~depth : Ast.stmt list =
  match Rng.int g.rng 12 with
  | 0 | 1 -> [ decl_scalar g ]
  | 2 when not guarded -> decl_array g
  | 3 -> [ decl_getchar g ]
  | 4 | 5 -> (
    match assign_scalar g ~guarded with
    | Some s -> [ s ]
    | None -> [ decl_scalar g ])
  | 6 -> (
    match store_array g with
    | Some s -> [ s ]
    | None -> [ gen_print g ])
  | 7 | 8 when depth > 0 ->
    let c = gen_cond g in
    let thn =
      scoped g (fun () -> gen_stmts g ~guarded:true ~depth:(depth - 1)
                            (Rng.int_in g.rng 1 2))
    in
    let els =
      if Rng.bool g.rng then
        scoped g (fun () -> gen_stmts g ~guarded:true ~depth:(depth - 1)
                              (Rng.int_in g.rng 1 2))
      else []
    in
    [ B.if_ c thn els ]
  | 9 when depth > 0 ->
    (* counted loop, constant trip count: terminates everywhere.
       Pre-widen every mutable scalar to the masked hull so intervals
       are loop-invariant (assignments in the body are masked). *)
    let trip = Rng.int_in g.rng 1 8 in
    let i = fresh g "i" in
    List.iter (fun s -> s.srange <- hull s.srange masked) g.scalars;
    let body =
      scoped g (fun () ->
          g.scalars <- { sname = i; srange = itv 0 trip; sconst = true } :: g.scalars;
          gen_stmts g ~guarded:true ~depth:(depth - 1) (Rng.int_in g.rng 1 2))
    in
    [ B.for_up i (B.int 0) (B.int trip) body ]
  | _ -> [ gen_print g ]

(* ---------- injection-site markers ---------- *)

let marker g =
  let id = List.length g.sites_rev in
  g.sites_rev <-
    {
      site_id = id;
      site_scalars = List.map (fun s -> (s.sname, s.srange)) g.scalars;
      site_arrays = List.map (fun a -> (a.aname, a.alen)) g.arrays;
    }
    :: g.sites_rev;
  B.block []

(* ---------- programs ---------- *)

let gen_globals g =
  let garrs =
    List.init (Rng.int g.rng 2) (fun _ ->
        let name = fresh g "gbuf" in
        let len = Rng.choose_list g.rng [ 4; 8 ] in
        let init =
          List.init len (fun _ -> Int64.of_int (Rng.int g.rng 256))
        in
        g.arrays <- { aname = name; alen = len } :: g.arrays;
        B.global_arr name Ast.Tint len ~init)
  in
  let gints =
    List.init (Rng.int g.rng 2) (fun _ ->
        let name = fresh g "gv" in
        let v = Rng.int g.rng 256 in
        g.scalars <- { sname = name; srange = itv v v; sconst = false } :: g.scalars;
        B.global name Ast.Tint ~init:[ Int64.of_int v ])
  in
  garrs @ gints

let gen_helper g =
  if Rng.bool g.rng then None
  else begin
    let fname = fresh g "f" in
    let body_g =
      {
        g with
        scalars =
          [ { sname = "a"; srange = itv 0 255; sconst = false };
            { sname = "b"; srange = itv 0 255; sconst = false } ];
        arrays = [];
      }
    in
    let e, iv = gen_expr body_g (Rng.int_in g.rng 2 3) in
    let e, iv = if within iv big then (e, iv) else mask_to (e, iv) 0xffff in
    g.helper <- Some (fname, iv);
    Some
      (B.func Ast.Tint fname
         ~params:[ (Ast.Tint, "a"); (Ast.Tint, "b") ]
         [ B.ret e ])
  end

let generate ~seed : result =
  B.line_counter := 0;
  let g =
    {
      rng = Rng.create (Rng.mix seed 0x9e11);
      scalars = [];
      arrays = [];
      fresh = 0;
      sites_rev = [];
      helper = None;
    }
  in
  let globals = gen_globals g in
  let helper = gen_helper g in
  let n = Rng.int_in g.rng 4 10 in
  let body = ref [] in
  for _ = 1 to n do
    body := List.rev_append (gen_stmt g ~guarded:false ~depth:2) !body;
    if Rng.int g.rng 2 = 0 then body := marker g :: !body
  done;
  (* a final always-reachable site, so every program has at least one *)
  body := marker g :: !body;
  (* epilogue: print every live scalar and the fringe of every array, so
     the oracle compares the whole final state *)
  let prints =
    List.map (fun s -> B.print (s.sname ^ " %d\n") [ B.var s.sname ]) g.scalars
    @ List.map
        (fun a ->
          B.print (a.aname ^ " %d %d\n")
            [ B.idx (B.var a.aname) (B.int 0);
              B.idx (B.var a.aname) (B.int (a.alen - 1)) ])
        g.arrays
  in
  let main_body = List.rev !body @ prints @ [ B.ret (B.int 0) ] in
  let funcs = Option.to_list helper @ [ B.func Ast.Tint "main" main_body ] in
  { prog = { Ast.globals; funcs }; sites = List.rev g.sites_rev }
