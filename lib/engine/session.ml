(* An engine session: the compile -> link -> observe pipeline behind
   content-addressed caches.

   Every consumer of the pipeline (oracle, reduction, localization,
   fuzzing, sanitizer builds, benchmarks, CLI) used to re-run each stage
   ad hoc; a session makes the three stages shared services:

     compile : typed program  -> per-profile binary   (unit cache)
     link    : binary         -> executable image     (image cache)
     run     : image x input  -> raw observation      (observation store)

   Cache keys are content hashes: a typed program or compiled unit is
   keyed by (length, murmur3 seed A, murmur3 seed B) of its [Marshal]
   serialization.  Both types are pure data (no closures, no custom
   blocks), so equal serializations imply structural equality, which
   implies behavioural equality of everything derived from them — a hit
   can only substitute an identical artefact, up to the ~2^-64 residual
   collision probability of the double 32-bit hash over equal lengths.

   The observation store memoizes [run] keyed by (image id, fuel,
   input).  The VM is deterministic: a linked image run on a given input
   under a given fuel budget produces exactly one (stdout, status,
   fuel_used) triple, so replaying from the store is observationally
   identical to re-executing.  Two restrictions keep this sound:
   - observations are stored RAW (pre-normalization); callers apply
     their own output filter on retrieval, so oracles with different
     normalizers can share a store;
   - only plain runs go through [run].  Executions that differ in more
     than (image, input, fuel) — sanitizer hooks, coverage, print
     tracing — must call the VM directly ([image] exposes the linked
     image for exactly that).

   Image ids are interned per unit key and never reused, so an image
   evicted from the cache and re-linked later gets the same id and its
   stored observations stay valid.

   Bounded memory: each cache is an {!Lru} bounded in bytes; the
   [cache_mb] budget is split 25% units / 25% images / 50% observations.
   [cache_mb = 0] disables caching entirely — every stage recomputes,
   which is the reference behaviour cross-validation compares against. *)

open Cdcompiler

type cache_stats = Lru.stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
}

type stats = {
  units : cache_stats;
  images : cache_stats;
  observations : cache_stats;
  budget_bytes : int;
  caching : bool;
}

type exec_obs = {
  obs_stdout : string;  (* raw, NOT normalized *)
  obs_status : Cdvm.Trap.status;
  obs_fuel : int;
}

(* content key: serialization length + two independent 32-bit hashes *)
type key = int * int * int

type linked = {
  image : Cdvm.Image.t;
  image_id : int;
  arena : Cdvm.Arena.t option Atomic.t;
      (* pooled scratch: exchanged out for the duration of a run, so
         concurrent runs of one image never share it (a late taker just
         creates a fresh arena) *)
}

type t = {
  caching : bool;
  budget_bytes : int;
  unit_cache : (key * string, Ir.unit_) Lru.t;
  image_cache : (key, linked) Lru.t;
  obs_cache : (int * int * string, exec_obs) Lru.t;
  ids : (key, int) Hashtbl.t;  (* interned image ids, never evicted *)
  ids_mutex : Mutex.t;
  mutable next_id : int;
}

let key_of_string (s : string) : key =
  ( String.length s,
    Cdutil.Murmur3.hash s,
    Cdutil.Murmur3.hash ~seed:0x9747b28cl s )

let prog_key (tp : Minic.Tast.tprogram) : key =
  key_of_string (Marshal.to_string tp [])

let unit_key (u : Ir.unit_) : key = key_of_string (Marshal.to_string u [])

let create ?(cache_mb = 128) () : t =
  let cache_mb = max 0 cache_mb in
  let budget_bytes = cache_mb * 1024 * 1024 in
  {
    caching = cache_mb > 0;
    budget_bytes;
    unit_cache = Lru.create ~budget_bytes:(budget_bytes / 4);
    image_cache = Lru.create ~budget_bytes:(budget_bytes / 4);
    obs_cache = Lru.create ~budget_bytes:(budget_bytes / 2);
    ids = Hashtbl.create 64;
    ids_mutex = Mutex.create ();
    next_id = 0;
  }

let caching t = t.caching
let budget_bytes t = t.budget_bytes

let intern t (key : key) : int =
  Mutex.lock t.ids_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.ids_mutex)
    (fun () ->
      match Hashtbl.find_opt t.ids key with
      | Some id -> id
      | None ->
          let id = t.next_id in
          t.next_id <- t.next_id + 1;
          Hashtbl.add t.ids key id;
          id)

(* ids for detached (uncached) images: negative, never interned, so they
   cannot collide with stored observations *)
let detached_ids = Atomic.make (-1)
let fresh_detached_id () = Atomic.fetch_and_add detached_ids (-1)

let words_weight v = Obj.reachable_words (Obj.repr v) * (Sys.word_size / 8)

(* --- compile --- *)

let compile_keyed t (pkey : key) (profile : Policy.profile)
    (tp : Minic.Tast.tprogram) : Ir.unit_ =
  if not t.caching then Pipeline.compile profile tp
  else
    Lru.find_or_compute t.unit_cache
      (pkey, profile.Policy.pname)
      ~weight:words_weight
      (fun () -> Pipeline.compile profile tp)

let compile t (profile : Policy.profile) (tp : Minic.Tast.tprogram) : Ir.unit_ =
  let pkey = if t.caching then prog_key tp else (0, 0, 0) in
  compile_keyed t pkey profile tp

let compile_profiles ?(jobs = Cdutil.Pool.default_jobs ()) t
    (profiles : Policy.profile list) (tp : Minic.Tast.tprogram) :
    (string * Ir.unit_) list =
  (* serialize the program once for all profiles *)
  let pkey = if t.caching then prog_key tp else (0, 0, 0) in
  let one p = (p.Policy.pname, compile_keyed t pkey p tp) in
  if jobs > 1 then Cdutil.Pool.map one profiles else List.map one profiles

(* --- link --- *)

let link_fresh t key_opt (u : Ir.unit_) : linked =
  let image = Cdvm.Image.link u in
  let image_id =
    match key_opt with
    | Some key -> intern t key
    | None -> fresh_detached_id ()
  in
  { image; image_id; arena = Atomic.make None }

let link t (u : Ir.unit_) : linked =
  if not t.caching then link_fresh t None u
  else
    let key = unit_key u in
    Lru.find_or_compute t.image_cache key
      ~weight:(fun l -> words_weight l.image)
      (fun () -> link_fresh t (Some key) u)

let image (l : linked) = l.image

(* --- run --- *)

let obs_overhead_bytes = 64

let execute (l : linked) ~(input : string) ~(fuel : int) : exec_obs =
  let arena =
    match Atomic.exchange l.arena None with
    | Some a -> a
    | None -> Cdvm.Arena.create l.image
  in
  let r =
    Fun.protect
      ~finally:(fun () -> Atomic.set l.arena (Some arena))
      (fun () ->
        Cdvm.Exec.run_linked
          ~config:{ Cdvm.Exec.default_config with Cdvm.Exec.input; fuel }
          ~arena l.image)
  in
  {
    obs_stdout = r.Cdvm.Exec.stdout;
    obs_status = r.Cdvm.Exec.status;
    obs_fuel = r.Cdvm.Exec.fuel_used;
  }

let run t (l : linked) ~(input : string) ~(fuel : int) : exec_obs =
  if not t.caching then execute l ~input ~fuel
  else
    Lru.find_or_compute t.obs_cache
      (l.image_id, fuel, input)
      ~weight:(fun o ->
        String.length o.obs_stdout + String.length input + obs_overhead_bytes)
      (fun () -> execute l ~input ~fuel)

(* --- stats --- *)

let stats t =
  {
    units = Lru.stats t.unit_cache;
    images = Lru.stats t.image_cache;
    observations = Lru.stats t.obs_cache;
    budget_bytes = t.budget_bytes;
    caching = t.caching;
  }

let reset_stats t =
  Lru.reset_stats t.unit_cache;
  Lru.reset_stats t.image_cache;
  Lru.reset_stats t.obs_cache

let hit_rate (c : cache_stats) =
  let total = c.hits + c.misses in
  if total = 0 then 0. else float_of_int c.hits /. float_of_int total

let stats_to_string (s : stats) : string =
  if not s.caching then "engine session: caching disabled (cache-mb 0)\n"
  else
    let line name (c : cache_stats) =
      Printf.sprintf
        "  %-12s %7d hits %7d misses (%5.1f%% hit rate) %6d evictions \
         %6d entries %8.1f KiB\n"
        name c.hits c.misses
        (100. *. hit_rate c)
        c.evictions c.entries
        (float_of_int c.bytes /. 1024.)
    in
    Printf.sprintf "engine session caches (budget %d MiB):\n%s%s%s"
      (s.budget_bytes / (1024 * 1024))
      (line "units" s.units) (line "images" s.images)
      (line "observations" s.observations)
