(* An engine session: the compile -> link -> observe pipeline behind
   content-addressed caches.

   Every consumer of the pipeline (oracle, reduction, localization,
   fuzzing, sanitizer builds, benchmarks, CLI) used to re-run each stage
   ad hoc; a session makes the three stages shared services:

     compile : typed program  -> per-profile binary   (unit cache)
     link    : binary         -> executable image     (image cache)
     run     : image x input  -> raw observation      (observation store)

   Cache keys are content hashes: a typed program or compiled unit is
   keyed by (length, murmur3 seed A, murmur3 seed B) of its [Marshal]
   serialization.  Both types are pure data (no closures, no custom
   blocks), so equal serializations imply structural equality, which
   implies behavioural equality of everything derived from them — a hit
   can only substitute an identical artefact, up to the ~2^-64 residual
   collision probability of the double 32-bit hash over equal lengths.

   The observation store memoizes [run] keyed by (image id, fuel,
   input).  The VM is deterministic: a linked image run on a given input
   under a given fuel budget produces exactly one (stdout, status,
   fuel_used) triple, so replaying from the store is observationally
   identical to re-executing.  Two restrictions keep this sound:
   - observations are stored RAW (pre-normalization); callers apply
     their own output filter on retrieval, so oracles with different
     normalizers can share a store;
   - only plain runs go through [run].  Executions that differ in more
     than (image, input, fuel) — sanitizer hooks, coverage, print
     tracing — must call the VM directly ([image] exposes the linked
     image for exactly that).

   Image ids are interned per unit key and never reused, so an image
   evicted from the cache and re-linked later gets the same id and its
   stored observations stay valid.

   Bounded memory: each cache is an {!Lru} bounded in bytes; the
   [cache_mb] budget is split 25% units / 25% images / 50% observations.
   [cache_mb = 0] disables caching entirely — every stage recomputes,
   which is the reference behaviour cross-validation compares against. *)

open Cdcompiler

type cache_stats = Lru.stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
}

type disk_stats = Diskcache.stats = {
  disk_hits : int;
  disk_misses : int;
  disk_stores : int;
  disk_bytes : int;
  disk_entries : int;
}

type stats = {
  units : cache_stats;
  images : cache_stats;
  observations : cache_stats;
  budget_bytes : int;
  caching : bool;
  key_calls : int;       (* content-key computations (Marshal + hash) *)
  key_seconds : float;   (* wall time spent computing content keys *)
  disk : disk_stats option;  (* None when no --disk-cache directory *)
}

type exec_obs = {
  obs_stdout : string;  (* raw, NOT normalized *)
  obs_status : Cdvm.Trap.status;
  obs_fuel : int;
}

(* content key: serialization length + two independent 32-bit hashes *)
type key = int * int * int

(* image key: the compiled unit is already content-addressed by the
   (program key, profile) pair that produced it, so the link stage can
   reuse that identity instead of re-serializing the whole unit.  Units
   linked directly (never seen by [compile]) fall back to their own
   content key with an empty profile tag. *)
type ikey = key * string

type linked = {
  image : Cdvm.Image.t;
  image_id : int;
  skey : string;
      (* stable (cross-process) rendering of the image key, used to
         address the disk observation store; "" for detached images *)
  arena : Cdvm.Arena.t option Atomic.t;
      (* pooled scratch: exchanged out for the duration of a run, so
         concurrent runs of one image never share it (a late taker just
         creates a fresh arena) *)
}

(* A bounded identity memo: physical value -> key, so re-keying the same
   program/unit costs a pointer scan instead of a Marshal of the whole
   structure (the engine cold-pass regression: every lookup used to
   serialize + double-hash its argument).  Linear scan over a small ring
   is cheap (<= 64 physical-equality tests) and the ring bound keeps
   evicted-value references from pinning memory forever. *)
module Memo = struct
  type 'a t = {
    mutex : Mutex.t;
    keys : Obj.t array;
    values : 'a option array;
    mutable cursor : int;
  }

  let size = 64
  let nothing = Obj.repr (ref ())  (* unique sentinel, never a user value *)

  let create () =
    {
      mutex = Mutex.create ();
      keys = Array.make size nothing;
      values = Array.make size None;
      cursor = 0;
    }

  let find t (v : Obj.t) : 'a option =
    Mutex.lock t.mutex;
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i < size do
      if t.keys.(!i) == v then found := t.values.(!i);
      incr i
    done;
    Mutex.unlock t.mutex;
    !found

  let add t (v : Obj.t) (x : 'a) : unit =
    Mutex.lock t.mutex;
    t.keys.(t.cursor) <- v;
    t.values.(t.cursor) <- Some x;
    t.cursor <- (t.cursor + 1) mod size;
    Mutex.unlock t.mutex
end

type t = {
  caching : bool;
  budget_bytes : int;
  unit_cache : (ikey, Ir.unit_) Lru.t;
  image_cache : (ikey, linked) Lru.t;
  obs_cache : (int * int * string, exec_obs) Lru.t;
  ids : (ikey, int) Hashtbl.t;  (* interned image ids, never evicted *)
  ids_mutex : Mutex.t;
  mutable next_id : int;
  prog_memo : key Memo.t;       (* tprogram (by identity) -> content key *)
  unit_memo : ikey Memo.t;      (* unit (by identity) -> image key *)
  key_calls : int Atomic.t;
  key_micros : int Atomic.t;
  disk : Diskcache.t option;
}

let key_of_string (s : string) : key =
  ( String.length s,
    Cdutil.Murmur3.hash s,
    Cdutil.Murmur3.hash ~seed:0x9747b28cl s )

let timed_key t (serialize : unit -> string) : key =
  let t0 = Unix.gettimeofday () in
  let k = key_of_string (serialize ()) in
  let dt = Unix.gettimeofday () -. t0 in
  Atomic.incr t.key_calls;
  ignore (Atomic.fetch_and_add t.key_micros (int_of_float (dt *. 1e6)));
  k

let prog_key (tp : Minic.Tast.tprogram) : key =
  key_of_string (Marshal.to_string tp [])

let create ?(cache_mb = 128) ?disk_dir ?(disk_mb = 512) () : t =
  let cache_mb = max 0 cache_mb in
  let budget_bytes = cache_mb * 1024 * 1024 in
  let caching = cache_mb > 0 in
  {
    caching;
    budget_bytes;
    unit_cache = Lru.create ~budget_bytes:(budget_bytes / 4);
    image_cache = Lru.create ~budget_bytes:(budget_bytes / 4);
    obs_cache = Lru.create ~budget_bytes:(budget_bytes / 2);
    ids = Hashtbl.create 64;
    ids_mutex = Mutex.create ();
    next_id = 0;
    prog_memo = Memo.create ();
    unit_memo = Memo.create ();
    key_calls = Atomic.make 0;
    key_micros = Atomic.make 0;
    disk =
      (* the disk layer sits behind the LRUs; with caching disabled the
         session is the recompute-everything reference and must not be
         served from any store *)
      (match disk_dir with
      | Some dir when caching -> Some (Diskcache.create ~dir ~cap_mb:disk_mb ())
      | Some _ | None -> None);
  }

let caching t = t.caching
let budget_bytes t = t.budget_bytes

let intern t (key : ikey) : int =
  Mutex.lock t.ids_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.ids_mutex)
    (fun () ->
      match Hashtbl.find_opt t.ids key with
      | Some id -> id
      | None ->
          let id = t.next_id in
          t.next_id <- t.next_id + 1;
          Hashtbl.add t.ids key id;
          id)

(* ids for detached (uncached) images: negative, never interned, so they
   cannot collide with stored observations *)
let detached_ids = Atomic.make (-1)
let fresh_detached_id () = Atomic.fetch_and_add detached_ids (-1)

(* Cheap structural size estimates (bytes).  [Obj.reachable_words] was
   accurate but traversed the whole artefact on every insert — on a cold
   pass that traversal rivalled the compile it was accounting for.  The
   constants approximate observed reachable sizes per instruction. *)
let unit_weight (u : Ir.unit_) : int =
  List.fold_left
    (fun acc (_, (f : Ir.ifunc)) ->
      acc + 160 + (Array.length f.Ir.code * 120) + (Array.length f.Ir.slots * 48))
    (512 + (List.length u.Ir.globals * 64))
    u.Ir.funcs

let image_weight (img : Cdvm.Image.t) : int =
  Array.fold_left
    (fun acc (lf : Cdvm.Image.lfunc) ->
      acc + 256
      + (Array.length lf.Cdvm.Image.l_code * 120)
      + (Array.length lf.Cdvm.Image.l_ops * 140)
      + (Array.length lf.Cdvm.Image.l_slots * 48))
    1024 img.Cdvm.Image.funcs

(* stable rendering of an image key for cross-process disk addressing *)
let skey_of_ikey (((len, h1, h2), pname) : ikey) : string =
  Printf.sprintf "%d.%x.%x.%s" len h1 h2 pname

(* --- compile --- *)

let prog_key_memo t (tp : Minic.Tast.tprogram) : key =
  let r = Obj.repr tp in
  match Memo.find t.prog_memo r with
  | Some k -> k
  | None ->
      let k = timed_key t (fun () -> Marshal.to_string tp []) in
      Memo.add t.prog_memo r k;
      k

let unit_disk_kind = "unit"

let compile_keyed t (pkey : key) (profile : Policy.profile)
    (tp : Minic.Tast.tprogram) : Ir.unit_ =
  if not t.caching then Pipeline.compile profile tp
  else begin
    let ik = (pkey, profile.Policy.pname) in
    let u =
      Lru.find_or_compute t.unit_cache ik ~weight:unit_weight (fun () ->
          let dkey = skey_of_ikey ik in
          let from_disk =
            match t.disk with
            | Some d -> (Diskcache.get d ~kind:unit_disk_kind dkey : Ir.unit_ option)
            | None -> None
          in
          match from_disk with
          | Some u -> u
          | None ->
              let u = Pipeline.compile profile tp in
              (match t.disk with
              | Some d -> Diskcache.put d ~kind:unit_disk_kind dkey u
              | None -> ());
              u)
    in
    (* the unit's image key is known here for free: remember it so [link]
       never has to serialize the unit *)
    (match Memo.find t.unit_memo (Obj.repr u) with
    | Some _ -> ()
    | None -> Memo.add t.unit_memo (Obj.repr u) ik);
    u
  end

let compile t (profile : Policy.profile) (tp : Minic.Tast.tprogram) : Ir.unit_ =
  let pkey = if t.caching then prog_key_memo t tp else (0, 0, 0) in
  compile_keyed t pkey profile tp

let compile_profiles ?(jobs = Cdutil.Pool.default_jobs ()) t
    (profiles : Policy.profile list) (tp : Minic.Tast.tprogram) :
    (string * Ir.unit_) list =
  (* serialize the program once for all profiles *)
  let pkey = if t.caching then prog_key_memo t tp else (0, 0, 0) in
  let one p = (p.Policy.pname, compile_keyed t pkey p tp) in
  if jobs > 1 then Cdutil.Pool.map one profiles else List.map one profiles

(* --- link --- *)

let link_fresh t key_opt (u : Ir.unit_) : linked =
  let image = Cdvm.Image.link u in
  let image_id, skey =
    match key_opt with
    | Some key -> (intern t key, skey_of_ikey key)
    | None -> (fresh_detached_id (), "")
  in
  { image; image_id; skey; arena = Atomic.make None }

let ikey_of_unit t (u : Ir.unit_) : ikey =
  let r = Obj.repr u in
  match Memo.find t.unit_memo r with
  | Some ik -> ik
  | None ->
      (* a unit that never went through [compile]: key it by its own
         content, tagged with an empty profile name so it cannot collide
         with a (program, profile) key *)
      let ik = (timed_key t (fun () -> Marshal.to_string u []), "") in
      Memo.add t.unit_memo r ik;
      ik

let link t (u : Ir.unit_) : linked =
  if not t.caching then link_fresh t None u
  else
    let key = ikey_of_unit t u in
    Lru.find_or_compute t.image_cache key
      ~weight:(fun l -> image_weight l.image)
      (fun () -> link_fresh t (Some key) u)

let image (l : linked) = l.image

(* --- run --- *)

let obs_overhead_bytes = 64

let obs_weight input (o : exec_obs) =
  String.length o.obs_stdout + String.length input + obs_overhead_bytes

(* arena pooling: exchanged out for the duration of the callback *)
let with_arena (l : linked) (f : Cdvm.Arena.t -> 'a) : 'a =
  let arena =
    match Atomic.exchange l.arena None with
    | Some a -> a
    | None -> Cdvm.Arena.create l.image
  in
  Fun.protect ~finally:(fun () -> Atomic.set l.arena (Some arena)) (fun () ->
      f arena)

let obs_of_result (r : Cdvm.Exec.result) : exec_obs =
  {
    obs_stdout = r.Cdvm.Exec.stdout;
    obs_status = r.Cdvm.Exec.status;
    obs_fuel = r.Cdvm.Exec.fuel_used;
  }

let execute (l : linked) ~(input : string) ~(fuel : int) : exec_obs =
  with_arena l (fun arena ->
      obs_of_result
        (Cdvm.Exec.run_linked
           ~config:{ Cdvm.Exec.default_config with Cdvm.Exec.input; fuel }
           ~arena l.image))

let obs_disk_kind = "obs"

(* the disk observation key: stable image key + fuel + exact input *)
let obs_dkey (l : linked) ~(fuel : int) ~(input : string) : string =
  Printf.sprintf "%s|%d|%s" l.skey fuel input

let disk_of t (l : linked) =
  (* detached images have no stable key to address the store with *)
  match t.disk with
  | Some d when l.skey <> "" -> Some d
  | Some _ | None -> None

let run t (l : linked) ~(input : string) ~(fuel : int) : exec_obs =
  if not t.caching then execute l ~input ~fuel
  else
    let mkey = (l.image_id, fuel, input) in
    match Lru.find_opt t.obs_cache mkey with
    | Some o -> o
    | None -> (
        let disk = disk_of t l in
        let from_disk =
          match disk with
          | Some d ->
              (Diskcache.get d ~kind:obs_disk_kind (obs_dkey l ~fuel ~input)
                : exec_obs option)
          | None -> None
        in
        match from_disk with
        | Some o ->
            Lru.put t.obs_cache mkey o ~weight:(obs_weight input o);
            o
        | None ->
            let o = execute l ~input ~fuel in
            Lru.put t.obs_cache mkey o ~weight:(obs_weight input o);
            (match disk with
            | Some d -> Diskcache.put d ~kind:obs_disk_kind (obs_dkey l ~fuel ~input) o
            | None -> ());
            o)

(* Batched observation: serve what the stores already hold, then run all
   remaining inputs through ONE arena acquisition ({!Cdvm.Exec.run_batch})
   instead of an exchange/validate/reset cycle per input.  Results are
   positionally identical to mapping {!run} over [inputs]. *)
let run_batch t (l : linked) ~(inputs : string array) ~(fuel : int) :
    exec_obs array =
  let n = Array.length inputs in
  let config = { Cdvm.Exec.default_config with Cdvm.Exec.fuel } in
  if not t.caching then
    with_arena l (fun arena ->
        Array.map obs_of_result
          (Cdvm.Exec.run_batch ~config ~arena l.image ~inputs))
  else begin
    let out : exec_obs option array = Array.make n None in
    let disk = disk_of t l in
    let miss = ref [] in
    for i = n - 1 downto 0 do
      let input = inputs.(i) in
      let mkey = (l.image_id, fuel, input) in
      match Lru.find_opt t.obs_cache mkey with
      | Some o -> out.(i) <- Some o
      | None -> (
          let from_disk =
            match disk with
            | Some d ->
                (Diskcache.get d ~kind:obs_disk_kind (obs_dkey l ~fuel ~input)
                  : exec_obs option)
            | None -> None
          in
          match from_disk with
          | Some o ->
              Lru.put t.obs_cache mkey o ~weight:(obs_weight input o);
              out.(i) <- Some o
          | None -> miss := i :: !miss)
    done;
    (match !miss with
    | [] -> ()
    | miss ->
        let idx = Array.of_list miss in
        let to_run = Array.map (fun i -> inputs.(i)) idx in
        let results =
          with_arena l (fun arena ->
              Cdvm.Exec.run_batch ~config ~arena l.image ~inputs:to_run)
        in
        Array.iteri
          (fun k r ->
            let i = idx.(k) in
            let input = inputs.(i) in
            let o = obs_of_result r in
            Lru.put t.obs_cache (l.image_id, fuel, input) o
              ~weight:(obs_weight input o);
            (match disk with
            | Some d ->
                Diskcache.put d ~kind:obs_disk_kind (obs_dkey l ~fuel ~input) o
            | None -> ());
            out.(i) <- Some o)
          results);
    Array.map Option.get out
  end

(* Observed execution: an observer makes the run more than a function of
   (image, input, fuel), so it must bypass the observation store — it
   always executes, whatever the caching mode.  [Steps]-level runs build
   a fresh memory inside the VM (the arena would be dead weight);
   everything else goes through the pooled arena like [run]. *)
let run_traced (_t : t) (l : linked) ~(observer : Cdvm.Observer.t)
    ~(input : string) ~(fuel : int) : Cdvm.Exec.result =
  let config =
    { Cdvm.Exec.default_config with Cdvm.Exec.input; fuel; observer }
  in
  match observer.Cdvm.Observer.level with
  | Cdvm.Observer.Steps _ -> Cdvm.Exec.run_linked ~config l.image
  | Cdvm.Observer.Silent | Cdvm.Observer.Prints _ ->
    with_arena l (fun arena -> Cdvm.Exec.run_linked ~config ~arena l.image)

(* --- stats --- *)

let stats t =
  {
    units = Lru.stats t.unit_cache;
    images = Lru.stats t.image_cache;
    observations = Lru.stats t.obs_cache;
    budget_bytes = t.budget_bytes;
    caching = t.caching;
    key_calls = Atomic.get t.key_calls;
    key_seconds = float_of_int (Atomic.get t.key_micros) /. 1e6;
    disk = Option.map Diskcache.stats t.disk;
  }

let reset_stats t =
  Lru.reset_stats t.unit_cache;
  Lru.reset_stats t.image_cache;
  Lru.reset_stats t.obs_cache;
  Atomic.set t.key_calls 0;
  Atomic.set t.key_micros 0

let hit_rate (c : cache_stats) =
  let total = c.hits + c.misses in
  if total = 0 then 0. else float_of_int c.hits /. float_of_int total

let stats_to_string (s : stats) : string =
  if not s.caching then "engine session: caching disabled (cache-mb 0)\n"
  else
    let line name (c : cache_stats) =
      Printf.sprintf
        "  %-12s %7d hits %7d misses (%5.1f%% hit rate) %6d evictions \
         %6d entries %8.1f KiB\n"
        name c.hits c.misses
        (100. *. hit_rate c)
        c.evictions c.entries
        (float_of_int c.bytes /. 1024.)
    in
    let disk_line =
      match s.disk with
      | None -> ""
      | Some d ->
          Printf.sprintf
            "  %-12s %7d hits %7d misses %6d stores %6d entries %8.1f KiB\n"
            "disk" d.disk_hits d.disk_misses d.disk_stores d.disk_entries
            (float_of_int d.disk_bytes /. 1024.)
    in
    Printf.sprintf
      "engine session caches (budget %d MiB):\n%s%s%s%s  key time: %d keys \
       in %.4fs\n"
      (s.budget_bytes / (1024 * 1024))
      (line "units" s.units) (line "images" s.images)
      (line "observations" s.observations)
      disk_line s.key_calls s.key_seconds

(* machine-readable stats: one self-contained JSON object, so fleet
   tooling (and the serve daemon's stats endpoint) can scrape a session
   without parsing the human table above *)
let cache_to_json (c : cache_stats) : string =
  Printf.sprintf
    "{\"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f, \"evictions\": %d, \
     \"entries\": %d, \"bytes\": %d}"
    c.hits c.misses (hit_rate c) c.evictions c.entries c.bytes

let stats_to_json (s : stats) : string =
  let disk =
    match s.disk with
    | None -> "null"
    | Some d ->
        Printf.sprintf
          "{\"hits\": %d, \"misses\": %d, \"stores\": %d, \"bytes\": %d, \
           \"entries\": %d}"
          d.disk_hits d.disk_misses d.disk_stores d.disk_bytes d.disk_entries
  in
  Printf.sprintf
    "{\"caching\": %b, \"budget_bytes\": %d, \"units\": %s, \"images\": %s, \
     \"observations\": %s, \"disk\": %s, \"key_calls\": %d, \
     \"key_seconds\": %.6f}"
    s.caching s.budget_bytes (cache_to_json s.units) (cache_to_json s.images)
    (cache_to_json s.observations)
    disk s.key_calls s.key_seconds
