(* A content-addressed on-disk store: the persistent layer behind the
   session's in-memory LRUs, so warm state survives process restarts and
   can be shared between fleet nodes over a common directory.

   Layout: [dir/<kind>/<hh>/<hh>/<hash>] — a two-level hash-prefix fan
   out (256 × 256 directories, populated lazily) keeps any single
   directory small under fleet-scale entry counts.

   Entry format (everything little-endian u32):

     "CDC1" | payload length | murmur3(payload) | payload

   where payload = [Marshal] of [(kind ^ ":" ^ key, value)].  Reads are
   guarded in depth: magic, length and checksum are verified *before*
   [Marshal.from_string] ever sees the bytes (unmarshalling corrupt data
   is unsafe), and the unmarshalled key must echo the requested one
   (same-hash collisions read as misses, never as wrong hits).  Any
   truncated, corrupt or unreadable entry is a miss.

   Writes are atomic: the entry is written to a unique temp file in the
   same directory and [Sys.rename]d into place, so a crashed or
   concurrent writer can never leave a half-written entry under the
   final name — and concurrent writers of the same key are idempotent
   (both write the same deterministic bytes).

   Size cap: the store keeps a RUNNING byte/entry count — seeded by one
   directory scan at [create], then updated on every store and every GC
   deletion — so the steady-state store path is O(1): a store only
   triggers GC when the running total actually exceeds [cap_bytes]
   (the old scheme walked the whole tree every 64 stores).  When GC does
   run, entries are deleted oldest-mtime-first until 3/4 of the cap and
   the counters are re-seeded from the surviving files.  GC is advisory
   (stat/unlink races with other processes are ignored), and so is the
   running count: another process storing into the same directory is
   only observed at the next GC rescan. *)

type stats = {
  disk_hits : int;
  disk_misses : int;
  disk_stores : int;
  disk_bytes : int;    (* running on-disk byte count (advisory) *)
  disk_entries : int;  (* running entry count (advisory) *)
}

type t = {
  dir : string;
  cap_bytes : int;
  gc_mutex : Mutex.t;
  bytes : int Atomic.t;    (* running totals: startup scan + store/evict *)
  entries : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;
}

let magic = "CDC1"

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec walk_files acc path =
  match Sys.readdir path with
  | exception Sys_error _ -> acc
  | names ->
      Array.fold_left
        (fun acc name ->
          let p = Filename.concat path name in
          match Unix.lstat p with
          | exception Unix.Unix_error (_, _, _) -> acc
          | st -> (
              match st.Unix.st_kind with
              | Unix.S_DIR -> walk_files acc p
              | Unix.S_REG -> (st.Unix.st_mtime, st.Unix.st_size, p) :: acc
              | _ -> acc))
        acc names

let create ~dir ?(cap_mb = 512) () : t =
  mkdir_p dir;
  (* the only full-tree scan on the store path: seed the running
     byte/entry count from whatever a previous process left behind *)
  let existing = walk_files [] dir in
  let bytes = List.fold_left (fun a (_, sz, _) -> a + sz) 0 existing in
  {
    dir;
    cap_bytes = max 1 cap_mb * 1024 * 1024;
    gc_mutex = Mutex.create ();
    bytes = Atomic.make bytes;
    entries = Atomic.make (List.length existing);
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    stores = Atomic.make 0;
  }

let dir t = t.dir

(* entry path: two independent 30-bit hashes give a 60-bit name, with
   the first hash's low bits doubling as the directory prefix *)
let path_of t ~(kind : string) (key : string) : string =
  let h1 = Cdutil.Murmur3.hash key in
  let h2 = Cdutil.Murmur3.hash ~seed:0x9747b28cl key in
  Printf.sprintf "%s/%s/%02x/%02x/%08x%08x" t.dir kind (h1 land 0xff)
    ((h1 lsr 8) land 0xff)
    h1 h2

let u32_to_bytes n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (n land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 3 (Char.chr ((n lsr 24) land 0xff));
  b

let u32_of_string s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let full_key ~kind key = kind ^ ":" ^ key

(* --- read --- *)

let read_file path : string option =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          let b = Bytes.create len in
          really_input ic b 0 len;
          Some (Bytes.unsafe_to_string b))

let get (type v) (t : t) ~(kind : string) (key : string) : v option =
  let miss () =
    Atomic.incr t.misses;
    None
  in
  match read_file (path_of t ~kind key) with
  | None -> miss ()
  | Some raw -> (
      let hdr = 12 in
      if
        String.length raw < hdr
        || not (String.equal (String.sub raw 0 4) magic)
      then miss ()
      else
        let plen = u32_of_string raw 4 in
        let crc = u32_of_string raw 8 in
        if String.length raw <> hdr + plen then miss ()
        else
          let payload = String.sub raw hdr plen in
          if Cdutil.Murmur3.hash payload <> crc land 0x3FFFFFFF then miss ()
          else
            match (Marshal.from_string payload 0 : string * v) with
            | exception _ -> miss ()
            | stored_key, value ->
                if String.equal stored_key (full_key ~kind key) then begin
                  Atomic.incr t.hits;
                  Some value
                end
                else miss ())

(* --- garbage collection --- *)

(* Runs only when the running byte count exceeds the cap; the scan here
   re-measures ground truth (and re-seeds the running counters), so any
   drift the advisory count accumulated — concurrent writer processes,
   lost unlink races — is corrected every GC. *)
let gc t =
  let files = walk_files [] t.dir in
  let total = List.fold_left (fun a (_, sz, _) -> a + sz) 0 files in
  let kept_bytes = ref total and kept_entries = ref (List.length files) in
  if total > t.cap_bytes then begin
    let target = t.cap_bytes * 3 / 4 in
    let oldest_first = List.sort compare files in
    List.iter
      (fun (_, sz, p) ->
        if !kept_bytes > target then begin
          (try
             Sys.remove p;
             kept_bytes := !kept_bytes - sz;
             decr kept_entries
           with Sys_error _ -> ())
        end)
      oldest_first
  end;
  Atomic.set t.bytes !kept_bytes;
  Atomic.set t.entries !kept_entries

(* --- write --- *)

let put (t : t) ~(kind : string) (key : string) (value : 'a) : unit =
  let payload = Marshal.to_string (full_key ~kind key, value) [] in
  let path = path_of t ~kind key in
  mkdir_p (Filename.dirname path);
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
  in
  (try
     let oc = open_out_bin tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         output_string oc magic;
         output_bytes oc (u32_to_bytes (String.length payload));
         output_bytes oc (u32_to_bytes (Cdutil.Murmur3.hash payload));
         output_string oc payload);
     (* a re-store of an existing key overwrites the same deterministic
        bytes: only a genuinely new file grows the running count *)
     let fresh = not (Sys.file_exists path) in
     Sys.rename tmp path;
     Atomic.incr t.stores;
     if fresh then begin
       ignore (Atomic.fetch_and_add t.bytes (12 + String.length payload));
       Atomic.incr t.entries
     end
   with Sys_error _ | Unix.Unix_error (_, _, _) ->
     (try Sys.remove tmp with Sys_error _ -> ()));
  (* O(1) steady state: the cap check is one atomic read; the full-tree
     scan only happens inside [gc], i.e. when the cap is actually hit *)
  if Atomic.get t.bytes > t.cap_bytes then begin
    Mutex.lock t.gc_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.gc_mutex)
      (fun () -> if Atomic.get t.bytes > t.cap_bytes then gc t)
  end

let stats t =
  {
    disk_hits = Atomic.get t.hits;
    disk_misses = Atomic.get t.misses;
    disk_stores = Atomic.get t.stores;
    disk_bytes = Atomic.get t.bytes;
    disk_entries = Atomic.get t.entries;
  }
