(** An engine session: the compile → link → observe pipeline behind
    content-addressed caches (see DESIGN.md §10 and §12).

    A session owns three bounded LRU caches:
    - a {b compiled-unit cache} keyed by (program content hash, profile
      name) — a typed program is compiled at most once per profile per
      session;
    - a {b linked-image cache} keyed by the same (program, profile)
      identity when the unit came out of {!compile} (no re-serialization
      at link time), or by the unit's own content hash otherwise;
    - an {b observation store} keyed by (image id, fuel, input) that
      turns replayed executions (reduction re-validation, localization,
      escalation replays, triage) into lookups.

    Content keys are (length, murmur3{_A}, murmur3{_B}) over the value's
    [Marshal] serialization; both program types are pure data, so equal
    keys substitute structurally identical artefacts.  Hot paths never
    re-serialize: bounded identity memos remember the key of recently
    seen programs/units, so a cold cache pass costs one serialization
    per distinct program rather than one per lookup.  Observations are
    stored raw (pre-normalization) and the VM is deterministic at fixed
    fuel, so a hit is observationally identical to a re-execution.
    Executions that differ in more than (image, input, fuel) — sanitizer
    hooks, coverage, print tracing — must bypass {!run} and call the VM
    directly on {!image}.

    When [disk_dir] is given, a persistent {!Diskcache} layers behind
    the unit cache and the observation store: in-memory misses consult
    the directory before recomputing, and fresh results are written
    through, so warm state survives process restarts.  Linked images are
    never stored on disk (linking from a cached unit is cheap and the
    image holds pre-decoded closures).

    [cache_mb = 0] disables caching: every stage recomputes, which is
    the reference behaviour cross-validation compares against (the disk
    layer is inert in that mode too). *)

type cache_stats = Lru.stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
}

type disk_stats = Diskcache.stats = {
  disk_hits : int;
  disk_misses : int;
  disk_stores : int;
  disk_bytes : int;  (** running on-disk byte count (advisory) *)
  disk_entries : int;  (** running on-disk entry count (advisory) *)
}

type stats = {
  units : cache_stats;
  images : cache_stats;
  observations : cache_stats;
  budget_bytes : int;
  caching : bool;
  key_calls : int;  (** content-key computations (Marshal + hash) *)
  key_seconds : float;  (** wall time spent computing content keys *)
  disk : disk_stats option;  (** [None] without a disk directory *)
}

type exec_obs = {
  obs_stdout : string;  (** raw stdout, {e not} normalized *)
  obs_status : Cdvm.Trap.status;
  obs_fuel : int;
}

type linked
(** A linked executable image plus its interned id and a pooled arena.
    Handles from a caching session are shared: callers must not mutate
    the underlying image. *)

type t

val create : ?cache_mb:int -> ?disk_dir:string -> ?disk_mb:int -> unit -> t
(** [create ()] makes a session with a [cache_mb] MiB budget (default
    128), split 25% units / 25% images / 50% observations, each side
    evicted least-recently-used.  [cache_mb = 0] disables caching.
    [disk_dir] adds a persistent store (capped at [disk_mb] MiB,
    default 512) behind the unit cache and observation store. *)

val caching : t -> bool
val budget_bytes : t -> int

val prog_key : Minic.Tast.tprogram -> int * int * int
(** Content key of a typed program (exposed for diagnostics/tests). *)

val compile : t -> Cdcompiler.Policy.profile -> Minic.Tast.tprogram ->
  Cdcompiler.Ir.unit_
(** Cached {!Cdcompiler.Pipeline.compile}. *)

val compile_profiles : ?jobs:int -> t -> Cdcompiler.Policy.profile list ->
  Minic.Tast.tprogram -> (string * Cdcompiler.Ir.unit_) list
(** [compile_profiles t ps tp]: [(pname, unit)] per profile, in order;
    the program is serialized once, misses go through the shared
    {!Cdutil.Pool} when [jobs > 1]. *)

val link : t -> Cdcompiler.Ir.unit_ -> linked
(** Cached {!Cdvm.Image.link}.  Re-linking an evicted unit re-interns
    the same image id, so stored observations survive eviction.  Units
    produced by {!compile} on this session link without serializing. *)

val image : linked -> Cdvm.Image.t
(** The underlying image, for executions the observation store must not
    serve (hooks, coverage, tracing). *)

val run : t -> linked -> input:string -> fuel:int -> exec_obs
(** Observation-store-backed plain execution of a linked image (arena
    pooled per handle; safe from any domain). *)

val run_batch : t -> linked -> inputs:string array -> fuel:int ->
  exec_obs array
(** [run_batch t l ~inputs ~fuel]: positionally identical to mapping
    {!run} over [inputs], but all store misses execute through a single
    arena acquisition ({!Cdvm.Exec.run_batch}), amortizing the
    per-execution reset. *)

val run_traced : t -> linked -> observer:Cdvm.Observer.t -> input:string ->
  fuel:int -> Cdvm.Exec.result
(** Observed execution of a linked image.  The observer makes the run
    more than a function of (image, input, fuel), so the observation
    store is bypassed: [run_traced] {e always} executes.  Use it for
    trace recording and print tracing; plain runs belong in {!run}. *)

val stats : t -> stats
val reset_stats : t -> unit
(** Reset hit/miss/key-time counters (cache contents are kept). *)

val hit_rate : cache_stats -> float
val stats_to_string : stats -> string

val stats_to_json : stats -> string
(** The same stats block as one JSON object (the [--stats-json] form,
    also embedded in the serve daemon's stats responses). *)
