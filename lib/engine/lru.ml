(* A mutex-protected, byte-bounded cache with least-recently-used
   eviction.

   The map lives behind one mutex; values are computed OUTSIDE the lock
   ([find_or_compute] releases it around the thunk), so a slow compile
   or VM run never serializes unrelated lookups.  The price is a benign
   race: two domains missing on the same key both compute, and the
   second insert is dropped in favour of the first — wasted work, never
   an inconsistency (all cached artefacts are deterministic functions of
   their key).

   The hit/miss/eviction counters are [Atomic.t], not plain ints under
   the mutex: the serve daemon reads them from its stats endpoint while
   every executor thread is mutating them, and an atomic read needs no
   lock — telemetry never contends with (or miscounts under) concurrent
   lookups.

   Weights are caller-provided byte estimates.  When an insert pushes
   the total past [budget_bytes], entries are evicted in
   least-recently-used order until the total drops to 3/4 of the budget
   (hysteresis: one oversized round of inserts does not cause an
   eviction per insert). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
}

type 'v entry = {
  value : 'v;
  weight : int;
  mutable stamp : int;  (* last-used tick, under the mutex *)
}

type ('k, 'v) t = {
  mutex : Mutex.t;
  table : ('k, 'v entry) Hashtbl.t;
  budget_bytes : int;
  mutable clock : int;
  mutable bytes : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

let create ~budget_bytes =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    budget_bytes = max 0 budget_bytes;
    clock = 0;
    bytes = 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* under the mutex *)
let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* under the mutex: drop least-recently-used entries until the byte
   total is at most [target] *)
let evict_to t target =
  if t.bytes > target then begin
    let all =
      Hashtbl.fold (fun k e acc -> (e.stamp, k, e.weight) :: acc) t.table []
    in
    let oldest_first = List.sort compare all in
    List.iter
      (fun (_, k, w) ->
        if t.bytes > target then begin
          Hashtbl.remove t.table k;
          t.bytes <- t.bytes - w;
          Atomic.incr t.evictions
        end)
      oldest_first
  end

(* under the mutex *)
let insert t key value weight =
  if not (Hashtbl.mem t.table key) then begin
    Hashtbl.add t.table key { value; weight; stamp = tick t };
    t.bytes <- t.bytes + weight;
    if t.bytes > t.budget_bytes then evict_to t (t.budget_bytes * 3 / 4)
  end

let find_opt t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
          e.stamp <- tick t;
          Atomic.incr t.hits;
          Some e.value
      | None ->
          Atomic.incr t.misses;
          None)

(* [put t key value ~weight]: insert a value computed elsewhere (batch
   executions, disk-cache hits).  Like the tail of [find_or_compute]: a
   concurrent insert of the same key wins and this one is dropped. *)
let put t key value ~weight = locked t (fun () -> insert t key value weight)

(* [find_or_compute t key ~weight compute]: cached value for [key], or
   [compute ()] (run unlocked) inserted with [weight value] bytes. *)
let find_or_compute t key ~weight compute =
  match find_opt t key with
  | Some v -> v
  | None ->
      let v = compute () in
      locked t (fun () -> insert t key v (weight v));
      v

let stats t =
  let entries, bytes =
    locked t (fun () -> (Hashtbl.length t.table, t.bytes))
  in
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
    entries;
    bytes;
  }

let reset_stats t =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.evictions 0

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.bytes <- 0)
