(* Fuzzing campaigns over the synthetic projects and the aggregation
   behind Tables 5 and 6 and Figure 2. *)

type found_bug = {
  bug : Project.seeded_bug;
  found_input : string;               (* a diffs/ entry attributed to it *)
  partition : int array;              (* implementation behaviour classes *)
}

type project_result = {
  project : Project.t;
  campaign : Fuzz.Compdiff_afl.campaign;
  found : found_bug list;
  unattributed : int;                 (* divergent inputs matching no seeded bug *)
  reductions : Compdiff.Reduce.stats list;
      (* one per reduced signature representative (reporting workload) *)
}

(* The paper's reporting step (§5): shrink one representative per
   signature.  Reductions are independent of each other — each owns its
   candidate oracles and the shared campaign oracle is thread-safe — so
   they spread over the pool, one divergence per task; the per-candidate
   executions inside a reduction run on the linked images as usual. *)
let reduce_representatives ?(max_checks = 160) (p : Project.t)
    (campaign : Fuzz.Compdiff_afl.campaign) : Compdiff.Reduce.stats list =
  (* candidate oracles share the campaign oracle's session: repeated
     candidate programs and re-checked inputs hit its caches *)
  let session =
    Compdiff.Oracle.session campaign.Fuzz.Compdiff_afl.oracle
  in
  let reoracle tp =
    Compdiff.Oracle.create ~session
      ~profiles:(Project.profiles_for p)
      ~normalize:p.Project.normalize ~fuel:60_000 tp
  in
  let reduce_one (e : Compdiff.Triage.diff_entry) =
    Compdiff.Reduce.reduce ~max_checks ~program:p.Project.program ~reoracle
      campaign.Fuzz.Compdiff_afl.oracle ~input:e.Compdiff.Triage.input
      e.Compdiff.Triage.observations
    |> Option.map (fun (r : Compdiff.Reduce.result) ->
           (e.Compdiff.Triage.input, r))
  in
  let reps = Compdiff.Triage.representatives campaign.Fuzz.Compdiff_afl.diffs in
  let reduced =
    (if List.length reps > 1 then Cdutil.Pool.map reduce_one reps
     else List.map reduce_one reps)
    |> List.filter_map Fun.id
  in
  List.map
    (fun (input, (r : Compdiff.Reduce.result)) ->
      Compdiff.Triage.attach_reduced campaign.Fuzz.Compdiff_afl.diffs ~input
        {
          Compdiff.Triage.red_input = r.Compdiff.Reduce.red_input;
          red_observations = r.Compdiff.Reduce.red_observations;
          red_checks = r.Compdiff.Reduce.red_stats.Compdiff.Reduce.checks;
        };
      r.Compdiff.Reduce.red_stats)
    reduced

let run_project ?session ?(max_execs = 6_000) ?(rng_seed = 7) ?(reduce = true)
    (p : Project.t) : project_result =
  let tp = Project.frontend p in
  let config =
    {
      Fuzz.Compdiff_afl.default_config with
      Fuzz.Compdiff_afl.seeds = p.Project.seeds;
      max_execs;
      rng_seed;
      fuel = 60_000;
      profiles = Project.profiles_for p;
      normalize = p.Project.normalize;
      (* reduction happens in batch below (with program reduction and
         pool parallelism), not inline on save *)
      reduce_on_save = false;
      session;
    }
  in
  let campaign = Fuzz.Compdiff_afl.run ~config tp in
  let reductions = if reduce then reduce_representatives p campaign else [] in
  (* triage: attribute each divergent input to the seeded bug whose
     trigger it satisfies; remember one representative per bug *)
  let entries = Compdiff.Triage.entries campaign.Fuzz.Compdiff_afl.diffs in
  let found_tbl : (string, found_bug) Hashtbl.t = Hashtbl.create 8 in
  let unattributed = ref 0 in
  List.iter
    (fun (e : Compdiff.Triage.diff_entry) ->
      match
        List.find_opt
          (fun (b : Project.seeded_bug) -> b.Project.trigger e.Compdiff.Triage.input)
          p.Project.bugs
      with
      | Some b ->
        if not (Hashtbl.mem found_tbl b.Project.bug_id) then begin
          let partition =
            Compdiff.Oracle.partition campaign.Fuzz.Compdiff_afl.oracle
              e.Compdiff.Triage.observations
          in
          Hashtbl.replace found_tbl b.Project.bug_id
            { bug = b; found_input = e.Compdiff.Triage.input; partition }
        end
      | None -> incr unattributed)
    entries;
  {
    project = p;
    campaign;
    found = Hashtbl.fold (fun _ f acc -> f :: acc) found_tbl [];
    unattributed = !unattributed;
    reductions;
  }

(* Campaigns are deterministic (seeded RNG, deterministic VM), so
   running the projects through the pool yields the same results in the
   same order as the sequential map. *)
let run_all ?session ?max_execs ?rng_seed ?reduce
    ?(jobs = Cdutil.Pool.default_jobs ()) () : project_result list =
  let run p = run_project ?session ?max_execs ?rng_seed ?reduce p in
  if jobs > 1 then Cdutil.Pool.map run Registry.all
  else List.map run Registry.all

(* --- reduction reporting (the §5 workload summary) --- *)

type reduction_summary = {
  rs_divergences : int;       (* representatives reduced *)
  rs_raw_bytes : int;
  rs_reduced_bytes : int;
  rs_median_ratio : float;    (* median per-divergence input reduction *)
  rs_checks : int;            (* oracle validations spent reducing *)
}

let summarize_reductions (results : project_result list) : reduction_summary =
  let all = List.concat_map (fun r -> r.reductions) results in
  let ratios =
    List.sort compare (List.map Compdiff.Reduce.input_ratio all)
  in
  let median =
    match ratios with
    | [] -> 0.
    | _ ->
      let n = List.length ratios in
      if n mod 2 = 1 then List.nth ratios (n / 2)
      else (List.nth ratios ((n / 2) - 1) +. List.nth ratios (n / 2)) /. 2.
  in
  {
    rs_divergences = List.length all;
    rs_raw_bytes =
      List.fold_left (fun a (s : Compdiff.Reduce.stats) -> a + s.input_before) 0 all;
    rs_reduced_bytes =
      List.fold_left (fun a (s : Compdiff.Reduce.stats) -> a + s.input_after) 0 all;
    rs_median_ratio = median;
    rs_checks =
      List.fold_left (fun a (s : Compdiff.Reduce.stats) -> a + s.checks) 0 all;
  }

(* --- Table 5 aggregation --- *)

type t5_row = {
  category : Project.bug_category;
  seeded : int;
  found : int;          (* = "Reported" in the paper's reading *)
  confirmed : int;
  fixed : int;
}

let categories =
  [
    Project.EvalOrder; Project.UninitMem; Project.IntError; Project.MemError;
    Project.PointerCmp; Project.Line; Project.Misc;
  ]

let table5 (results : project_result list) : t5_row list =
  let found_bugs = List.concat_map (fun (r : project_result) -> r.found) results in
  List.map
    (fun category ->
      let seeded =
        List.length
          (List.filter
             (fun (_, (b : Project.seeded_bug)) -> b.Project.category = category)
             Registry.all_bugs)
      in
      let of_cat =
        List.filter (fun f -> f.bug.Project.category = category) found_bugs
      in
      {
        category;
        seeded;
        found = List.length of_cat;
        confirmed =
          List.length (List.filter (fun f -> f.bug.Project.confirmed) of_cat);
        fixed = List.length (List.filter (fun f -> f.bug.Project.fixed) of_cat);
      })
    categories

(* --- Table 6: which found bugs sanitizers also cover --- *)

type t6_row = {
  t6_category : Project.bug_category;
  t6_found : int;
  by_asan : int;
  by_ubsan : int;
  by_msan : int;
  by_any : int;
}

(* check a sanitizer against a found bug: run the sanitizer-instrumented
   build on the bug's witness and found inputs *)
let sanitizer_covers (b : Sanitizers.San.build) (kind : Sanitizers.San.kind)
    (f : found_bug) : bool =
  Sanitizers.San.detects_built ~fuel:60_000 kind b
    ~inputs:[ f.bug.Project.witness; f.found_input ]

let table6 ?session (results : project_result list) : t6_row list * int =
  (* one instrumented build per project, shared by every (category, kind,
     bug) probe below instead of recompiling each time *)
  let builds : (string, Sanitizers.San.build) Hashtbl.t = Hashtbl.create 8 in
  let build_for (p : Project.t) : Sanitizers.San.build =
    match Hashtbl.find_opt builds p.Project.pname with
    | Some b -> b
    | None ->
      let b = Sanitizers.San.build ?session (Project.frontend p) in
      Hashtbl.add builds p.Project.pname b;
      b
  in
  let rows =
    List.filter_map
      (fun category ->
        let per_project =
          List.concat_map
            (fun (r : project_result) ->
              List.filter_map
                (fun f ->
                  if f.bug.Project.category = category then Some (r.project, f)
                  else None)
                r.found)
            results
        in
        if per_project = [] then None
        else begin
          let count kind =
            List.length
              (List.filter
                 (fun (p, f) -> sanitizer_covers (build_for p) kind f)
                 per_project)
          in
          let asan = count Sanitizers.San.Asan in
          let ubsan = count Sanitizers.San.Ubsan in
          let msan = count Sanitizers.San.Msan in
          let any =
            List.length
              (List.filter
                 (fun (p, f) ->
                   List.exists
                     (fun k -> sanitizer_covers (build_for p) k f)
                     Sanitizers.San.all)
                 per_project)
          in
          Some
            {
              t6_category = category;
              t6_found = List.length per_project;
              by_asan = asan;
              by_ubsan = ubsan;
              by_msan = msan;
              by_any = any;
            }
        end)
      categories
  in
  let total_any = List.fold_left (fun acc r -> acc + r.by_any) 0 rows in
  (rows, total_any)

(* --- Figure 2: subset study over the found real-world bugs --- *)

let partitions (results : project_result list) : int array list =
  List.concat_map
    (fun (r : project_result) ->
      List.map
        (fun f ->
          (* restrict to the standard ten implementations: MuJS runs with
             the extended set, whose eleventh column is dropped *)
          let n = List.length Cdcompiler.Profiles.all in
          if Array.length f.partition > n then Array.sub f.partition 0 n
          else f.partition)
        r.found)
    results
