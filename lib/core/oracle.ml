(* The CompDiff oracle (Section 3.1).

   A program is compiled once per implementation; [check] runs every
   binary on one input, normalizes the outputs, and compares their
   MurmurHash3 checksums. Any disagreement is a divergence: for programs
   with deterministic output this is a true positive by construction.

   Timeouts follow RQ6: if only some binaries hang, the fuel budget is
   escalated (up to a cap) until the set of hanging binaries stabilizes;
   a residual mixed hang is reported as a divergence, an all-hang as
   agreement.

   Execution strategy (a verdict-preserving liberty with the paper):
   - compilation, linking and plain execution go through an
     {!Engine.Session} (a private caching-disabled one when the caller
     passes none), so shared sessions reuse compiled units, linked
     images and stored observations across oracles;
   - binaries with equal {!Binsig.signature} form equivalence classes;
     one representative per class is linked at oracle creation and
     executed via {!Engine.Session.run} (linked executor with a pooled
     per-class arena), the observation fanned out to every member;
   - the per-class runs of one fuel round go through the shared
     {!Cdutil.Pool} when [jobs > 1];
   - fuel escalation is incremental: only classes whose last observation
     hung are re-run at the higher budget.  This is observationally
     identical to re-running everything because the VM is deterministic
     at a fixed fuel and a terminating run consumes the same fuel under
     any sufficient budget — finished observations (including their
     [fuel_used]) can simply be reused.

   [observe_naive]/[check_naive] keep the sequential, dedup-free
   reference semantics for cross-validation; they bypass the session
   entirely (tree-walking interpreter on the uncached units), so
   comparing [check] against [check_naive] also cross-validates the
   session's cached path against a fresh one. *)

open Cdcompiler

type observation = {
  output : string;          (* normalized stdout *)
  status : Cdvm.Trap.status;
  fuel_used : int;
}

type verdict =
  | Agree of observation
  | Diverge of (string * observation) list
      (* every implementation's observation, in implementation order *)

type stats = {
  checks : int;            (* oracle checks (inputs judged) *)
  vm_execs : int;          (* observations requested from the engine;
                              actual VM executions when the session does
                              not cache (hits replay from the store) *)
  dedup_saved : int;       (* executions avoided by binary dedup *)
  escalation_saved : int;  (* executions avoided by incremental escalation *)
}

type t = {
  binaries : (string * Ir.unit_) list;
  session : Engine.Session.t;
      (* owns linking and plain execution; caching-disabled when the
         creator passed no session of their own *)
  normalize : Normalize.filter;
  base_fuel : int;
  max_fuel : int;
  compare_status : bool;    (* ablation knob: include exit/trap status *)
  jobs : int;
  nbinaries : int;
  class_of : int array;        (* binary index -> class index *)
  class_repr : Ir.unit_ array; (* class index -> representative binary *)
  class_size : int array;      (* class index -> number of members *)
  class_linked : Engine.Session.linked array;
      (* linked once per class through the session (image cache + pooled
         arena + observation store) *)
  c_checks : int Atomic.t;
  c_execs : int Atomic.t;
  c_dedup_saved : int Atomic.t;
  c_escal_saved : int Atomic.t;
}

(* Partition the binaries into behavioral equivalence classes by their
   canonical signature (exact string equality: no hash-collision risk). *)
let build_classes ~dedup (binaries : (string * Ir.unit_) list) =
  let n = List.length binaries in
  let class_of = Array.make n 0 in
  if not dedup then begin
    let repr = Array.of_list (List.map snd binaries) in
    Array.iteri (fun i _ -> class_of.(i) <- i) repr;
    (class_of, repr, Array.make n 1)
  end
  else begin
    let table : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let reprs = ref [] and nclasses = ref 0 in
    List.iteri
      (fun i (_, u) ->
        let key = Binsig.signature u in
        match Hashtbl.find_opt table key with
        | Some ci -> class_of.(i) <- ci
        | None ->
            let ci = !nclasses in
            incr nclasses;
            Hashtbl.add table key ci;
            reprs := u :: !reprs;
            class_of.(i) <- ci)
      binaries;
    let repr = Array.of_list (List.rev !reprs) in
    let size = Array.make (max 1 !nclasses) 0 in
    Array.iter (fun ci -> size.(ci) <- size.(ci) + 1) class_of;
    (class_of, repr, size)
  end

(* oracles created without an explicit session still route linking and
   execution through the engine, just without caching *)
let private_session () = Engine.Session.create ~cache_mb:0 ()

let mk ~session ~normalize ~fuel ~max_fuel ~compare_status ~jobs ~dedup
    binaries =
  let session = match session with Some s -> s | None -> private_session () in
  let class_of, class_repr, class_size = build_classes ~dedup binaries in
  (* link each class representative once through the session; every
     execution of the class runs the image (the reference interpreter
     stays on [observe_naive]) *)
  let class_linked = Array.map (Engine.Session.link session) class_repr in
  {
    binaries;
    session;
    normalize;
    base_fuel = fuel;
    max_fuel;
    compare_status;
    jobs;
    nbinaries = List.length binaries;
    class_of;
    class_repr;
    class_size;
    class_linked;
    c_checks = Atomic.make 0;
    c_execs = Atomic.make 0;
    c_dedup_saved = Atomic.make 0;
    c_escal_saved = Atomic.make 0;
  }

let create ?session ?(profiles = Profiles.all) ?(normalize = Normalize.identity)
    ?(fuel = 200_000) ?(max_fuel = 3_200_000) ?(compare_status = true)
    ?(jobs = Cdutil.Pool.default_jobs ()) ?(dedup = true)
    (tp : Minic.Tast.tprogram) : t =
  let session = match session with Some s -> s | None -> private_session () in
  let binaries = Engine.Session.compile_profiles ~jobs session profiles tp in
  mk ~session:(Some session) ~normalize ~fuel ~max_fuel ~compare_status ~jobs
    ~dedup binaries

let of_binaries ?session ?(normalize = Normalize.identity) ?(fuel = 200_000)
    ?(max_fuel = 3_200_000) ?(compare_status = true)
    ?(jobs = Cdutil.Pool.default_jobs ()) ?(dedup = true)
    (binaries : (string * Ir.unit_) list) : t =
  mk ~session ~normalize ~fuel ~max_fuel ~compare_status ~jobs ~dedup binaries

let names t = List.map fst t.binaries
let binaries t = t.binaries
let session t = t.session
let jobs t = t.jobs
let base_fuel t = t.base_fuel
let fuel_limit t = t.max_fuel
let normalize t = t.normalize

(* The budget needed to replay a set of observations faithfully: a
   terminating run behaves identically under any budget >= its
   [fuel_used], and a hang's [fuel_used] equals the (escalated) budget
   it was observed at.  Localization and reduction re-executions must
   use this, not the base fuel: a divergence found after escalation
   replayed at base fuel manufactures spurious hangs. *)
let verdict_fuel t (obs : (string * observation) list) : int =
  List.fold_left (fun acc (_, o) -> max acc o.fuel_used) t.base_fuel obs
let class_count t = Array.length t.class_repr
let classes t = Array.copy t.class_of

let stats t =
  {
    checks = Atomic.get t.c_checks;
    vm_execs = Atomic.get t.c_execs;
    dedup_saved = Atomic.get t.c_dedup_saved;
    escalation_saved = Atomic.get t.c_escal_saved;
  }

let reset_stats t =
  Atomic.set t.c_checks 0;
  Atomic.set t.c_execs 0;
  Atomic.set t.c_dedup_saved 0;
  Atomic.set t.c_escal_saved 0

let stats_to_json (s : stats) : string =
  Printf.sprintf
    "{\"checks\": %d, \"vm_execs\": %d, \"dedup_saved\": %d, \
     \"escalation_saved\": %d}"
    s.checks s.vm_execs s.dedup_saved s.escalation_saved

let run_one t ~fuel ~input (u : Ir.unit_) : observation =
  let r =
    Cdvm.Exec.run
      ~config:{ Cdvm.Exec.default_config with Cdvm.Exec.input; fuel }
      u
  in
  {
    output = t.normalize r.Cdvm.Exec.stdout;
    status = r.Cdvm.Exec.status;
    fuel_used = r.Cdvm.Exec.fuel_used;
  }

(* Observe class [ci] through the session: linked execution with the
   handle's pooled arena, served from the observation store when the
   session caches (the store holds raw output; normalization is this
   oracle's concern). *)
let run_linked_one t ~fuel ~input ci : observation =
  let o = Engine.Session.run t.session t.class_linked.(ci) ~input ~fuel in
  {
    output = t.normalize o.Engine.Session.obs_stdout;
    status = o.Engine.Session.obs_status;
    fuel_used = o.Engine.Session.obs_fuel;
  }

(* checksum of what CompDiff compares for one observation; hashed
   incrementally so the hot path never concatenates *)
let checksum t (o : observation) : int32 =
  let status_part = if t.compare_status then Cdvm.Trap.signature o.status else "" in
  Cdutil.Murmur3.hash32_parts [ o.output; "\x00"; status_part ]

(* Sequential, dedup-free reference: run every binary on [input],
   escalating fuel while the hang set is mixed. *)
let observe_naive t ~(input : string) : (string * observation) list =
  let rec attempt fuel =
    let obs = List.map (fun (n, u) -> (n, run_one t ~fuel ~input u)) t.binaries in
    let hangs, finished =
      List.partition (fun (_, o) -> o.status = Cdvm.Trap.Hang) obs
    in
    if hangs = [] || finished = [] then obs
    else if fuel >= t.max_fuel then obs
    else attempt (fuel * 4)
  in
  attempt t.base_fuel

(* Deduped, pooled, incrementally escalating execution.  Produces the
   same observation list as [observe_naive] (see the header comment). *)
let observe t ~(input : string) : (string * observation) list =
  Atomic.incr t.c_checks;
  let nclasses = Array.length t.class_repr in
  let class_obs : observation option array = Array.make nclasses None in
  let run_round fuel (pending : int list) =
    let run ci =
      Atomic.incr t.c_execs;
      (ci, run_linked_one t ~fuel ~input ci)
    in
    let npending = List.length pending in
    let obs =
      if t.jobs > 1 && npending > 1 then Cdutil.Pool.map run pending
      else List.map run pending
    in
    List.iter (fun (ci, o) -> class_obs.(ci) <- Some o) obs;
    (* accounting, relative to the naive oracle's [nbinaries] runs per
       round: dedup covers the members beyond each representative,
       incremental escalation covers the classes not re-run at all *)
    let covered = List.fold_left (fun a ci -> a + t.class_size.(ci)) 0 pending in
    ignore (Atomic.fetch_and_add t.c_dedup_saved (covered - npending));
    ignore (Atomic.fetch_and_add t.c_escal_saved (t.nbinaries - covered))
  in
  let rec escalate fuel pending =
    run_round fuel pending;
    let hung = ref [] and hung_members = ref 0 in
    for ci = nclasses - 1 downto 0 do
      match class_obs.(ci) with
      | Some o when o.status = Cdvm.Trap.Hang ->
          hung := ci :: !hung;
          hung_members := !hung_members + t.class_size.(ci)
      | _ -> ()
    done;
    (* [hung = []]: everything terminated. [hung_members = nbinaries]:
       an all-hang, which (as in the naive loop) is only possible in the
       first round and counts as agreement. *)
    if !hung = [] || !hung_members = t.nbinaries then ()
    else if fuel >= t.max_fuel then ()
    else escalate (fuel * 4) !hung
  in
  escalate t.base_fuel (List.init nclasses Fun.id);
  List.mapi
    (fun i (name, _) ->
      match class_obs.(t.class_of.(i)) with
      | Some o -> (name, o)
      | None -> assert false)
    t.binaries

(* Batched observation of many inputs: per-class, all inputs that still
   need the class at the current fuel level run through ONE
   {!Engine.Session.run_batch} (single arena acquisition, amortized
   reset).  Escalation is level-synchronous — every input walks the same
   base, ×4, ×16, … fuel sequence as the sequential loop, inputs just
   drop out when their hang set stabilizes — so element [k] of the
   result is exactly [observe t ~input:inputs.(k)], and the per-round
   stats accounting below mirrors [observe]'s per input. *)
let observe_batch t ~(inputs : string array) :
    (string * observation) list array =
  let ninputs = Array.length inputs in
  ignore (Atomic.fetch_and_add t.c_checks ninputs);
  let nclasses = Array.length t.class_repr in
  let class_obs : observation option array array =
    Array.init ninputs (fun _ -> Array.make nclasses None)
  in
  (* pending.(k): classes input k still has to run at the current level *)
  let pending = Array.make ninputs (List.init nclasses Fun.id) in
  if ninputs = 0 then [||]
  else begin
    let fuel = ref t.base_fuel in
    let continue_ = ref true in
    while !continue_ do
      (* accounting, per input, identical to [observe]'s run_round *)
      Array.iter
        (fun pend ->
          if pend <> [] then begin
            let npending = List.length pend in
            let covered =
              List.fold_left (fun a ci -> a + t.class_size.(ci)) 0 pend
            in
            ignore (Atomic.fetch_and_add t.c_execs npending);
            ignore (Atomic.fetch_and_add t.c_dedup_saved (covered - npending));
            ignore (Atomic.fetch_and_add t.c_escal_saved (t.nbinaries - covered))
          end)
        pending;
      (* transpose: which inputs does each class run this round? *)
      let by_class = Array.make nclasses [] in
      Array.iteri
        (fun k pend ->
          List.iter (fun ci -> by_class.(ci) <- k :: by_class.(ci)) pend)
        pending;
      let run_class ci =
        let ks = Array.of_list (List.rev by_class.(ci)) in
        let batch = Array.map (fun k -> inputs.(k)) ks in
        let obs =
          Engine.Session.run_batch t.session t.class_linked.(ci) ~inputs:batch
            ~fuel:!fuel
        in
        Array.iteri
          (fun j o ->
            class_obs.(ks.(j)).(ci) <-
              Some
                {
                  output = t.normalize o.Engine.Session.obs_stdout;
                  status = o.Engine.Session.obs_status;
                  fuel_used = o.Engine.Session.obs_fuel;
                })
          obs;
        ci
      in
      let cis =
        List.filter (fun ci -> by_class.(ci) <> []) (List.init nclasses Fun.id)
      in
      if t.jobs > 1 && List.length cis > 1 then
        ignore (Cdutil.Pool.map run_class cis)
      else List.iter (fun ci -> ignore (run_class ci)) cis;
      (* recompute each input's pending set, exactly as [escalate] does *)
      let any = ref false in
      Array.iteri
        (fun k pend ->
          if pend <> [] then begin
            let hung = ref [] and hung_members = ref 0 in
            for ci = nclasses - 1 downto 0 do
              match class_obs.(k).(ci) with
              | Some o when o.status = Cdvm.Trap.Hang ->
                  hung := ci :: !hung;
                  hung_members := !hung_members + t.class_size.(ci)
              | _ -> ()
            done;
            if !hung = [] || !hung_members = t.nbinaries then pending.(k) <- []
            else if !fuel >= t.max_fuel then pending.(k) <- []
            else begin
              pending.(k) <- !hung;
              any := true
            end
          end)
        pending;
      if !any then fuel := !fuel * 4 else continue_ := false
    done;
    Array.map
      (fun co ->
        List.mapi
          (fun i (name, _) ->
            match co.(t.class_of.(i)) with
            | Some o -> (name, o)
            | None -> assert false)
          t.binaries)
      class_obs
  end

let verdict_of_observations t (obs : (string * observation) list) : verdict =
  match obs with
  | [] -> invalid_arg "Oracle: no binaries"
  | (_, first) :: rest ->
    let c0 = checksum t first in
    if List.for_all (fun (_, o) -> checksum t o = c0) rest then Agree first
    else Diverge obs

let check t ~(input : string) : verdict =
  verdict_of_observations t (observe t ~input)

let check_naive t ~(input : string) : verdict =
  verdict_of_observations t (observe_naive t ~input)

let check_batch t ~(inputs : string array) : verdict array =
  Array.map (verdict_of_observations t) (observe_batch t ~inputs)

let is_divergence = function Diverge _ -> true | Agree _ -> false

(* Scan an input set; return the first bug-triggering input, like the
   "save to diffs/" step of Algorithm 1. *)
let find_bug t ~(inputs : string list) : (string * (string * observation) list) option
    =
  List.find_map
    (fun input ->
      match check t ~input with
      | Diverge obs -> Some (input, obs)
      | Agree _ -> None)
    inputs

(* Detection only needs the boolean, so the whole input set goes through
   one batched observation per class instead of a check per input.
   (Worth it because the common answer during fuzzing is "no".) *)
let detects t ~(inputs : string list) : bool =
  Array.exists is_divergence (check_batch t ~inputs:(Array.of_list inputs))

(* Group implementations by observed behaviour: the equivalence classes
   that drive the subset studies of Figures 1 and 2. Returns a class id
   per implementation, in implementation order. *)
let partition t (obs : (string * observation) list) : int array =
  let table : (int32, int) Hashtbl.t = Hashtbl.create 8 in
  let next = ref 0 in
  Array.of_list
    (List.map
       (fun (_, o) ->
         let c = checksum t o in
         match Hashtbl.find_opt table c with
         | Some id -> id
         | None ->
           let id = !next in
           incr next;
           Hashtbl.add table c id;
           id)
       obs)

(* human-readable divergence report, in the paper's bug-report format:
   input, reproducing configurations, divergent outputs *)
let report_to_string ~(input : string) (obs : (string * observation) list) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "=== CompDiff divergence report ===\n";
  Buffer.add_string buf
    (Printf.sprintf "input (%d bytes): %S\n" (String.length input) input);
  let by_output = Hashtbl.create 8 in
  List.iter
    (fun (name, o) ->
      let key = (o.output, Cdvm.Trap.status_to_string o.status) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_output key) in
      Hashtbl.replace by_output key (name :: cur))
    obs;
  Hashtbl.iter
    (fun (out, status) names ->
      Buffer.add_string buf
        (Printf.sprintf "--- %s (status %s):\n%s\n"
           (String.concat ", " (List.rev names))
           status out))
    by_output;
  Buffer.contents buf
