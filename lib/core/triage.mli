(** Divergence triage (paper §3.2, "Bug-triggering inputs").

    Many inputs trigger the same bug; entries are bucketed by a
    canonical-form signature of the behaviour partition (which
    implementations agree with which), the differential analogue of AFL
    crash deduplication. *)

type diff_entry = {
  input : string;
  observations : (string * Oracle.observation) list;
  signature : int;
}

type t

val signature_of_partition : int array -> int
(** Renaming-invariant hash of a partition: [[0;0;1]] and [[1;1;0]] get
    the same signature, [[0;1;0]] a different one. *)

val create : unit -> t

val add :
  t -> Oracle.t -> input:string -> (string * Oracle.observation) list ->
  [ `New | `Duplicate ]
(** Record a divergent input; [`New] iff its signature was not seen. *)

val unique_count : t -> int
val total_count : t -> int

val entries : t -> diff_entry list
(** All recorded entries, oldest first. *)

val representatives : t -> diff_entry list
(** One entry per unique signature, oldest first. *)

(** {2 Root-cause suggestion}

    Maps a localized divergence through UnstableCheck's static findings
    to a Table 5 root-cause label: the analyzer names the sites whose
    semantics are implementation-defined, the localization names the
    function where behaviour first diverged, and their intersection
    attributes the bug. *)

type root_cause = {
  rc_label : string;                    (** Table 5 category *)
  rc_finding : Staticcheck.Finding.t;   (** the supporting static finding *)
  rc_in_function : bool;
      (** the finding lies in the function that diverged *)
}

val table5_label : Staticcheck.Finding.kind -> string
(** Finding kind -> Table 5 category name ([UninitMem], [IntError],
    [MemError], [PointerCmp], [Misc.]). *)

val suggest_root_cause :
  Minic.Ast.program -> Localize.localization -> root_cause option
(** Run UnstableCheck over the (untyped) program and pick the finding
    that best explains the localization; [None] when the analyzer is
    silent. *)

val root_cause_to_string : root_cause -> string
