(** Divergence triage (paper §3.2, "Bug-triggering inputs").

    Many inputs trigger the same bug; entries are bucketed by a
    canonical-form signature of the behaviour partition (which
    implementations agree with which), the differential analogue of AFL
    crash deduplication. *)

type reduced = {
  red_input : string;
      (** the shrunk reproducer ({!Reduce}-validated: same class) *)
  red_observations : (string * Oracle.observation) list;
  red_checks : int;  (** oracle validations the reduction spent *)
}

type diff_entry = {
  input : string;
  observations : (string * Oracle.observation) list;
  signature : int;
  mutable reduced : reduced option;
      (** filled in by {!attach_reduced} once the reducer has run *)
}

type t

val signature_of_partition : int array -> int
(** Renaming-invariant hash of a partition: [[0;0;1]] and [[1;1;0]] get
    the same signature, [[0;1;0]] a different one. *)

val create : unit -> t

val add :
  t -> Oracle.t -> input:string -> (string * Oracle.observation) list ->
  [ `New | `Duplicate ]
(** Record a divergent input; [`New] iff its signature was not seen. *)

val unique_count : t -> int
val total_count : t -> int

val entries : t -> diff_entry list
(** All recorded entries, oldest first. *)

val representatives : t -> diff_entry list
(** One entry per unique signature, oldest first. *)

val attach_reduced : t -> input:string -> reduced -> unit
(** Record a reduced reproducer on the entry whose raw input is
    [input]; no-op if no such entry exists. *)

val reduced_count : t -> int

val reduction_bytes : t -> int * int
(** Total (raw, reduced) input bytes over the reduced entries — the
    campaign-level reduction ratio is [1 - reduced/raw]. *)

(** {2 Report-level dedup}

    The partition signature is the cheap online dedup; reports group
    one level further, by (localized function, suggested root cause),
    computed on the reduced reproducer when one is attached. *)

type report_key = {
  rk_fn : string option;     (** function the divergence localizes to *)
  rk_label : string option;  (** Table 5 label, when [program] given *)
}

val report_key_to_string : report_key -> string

val report_buckets :
  t -> Oracle.t -> ?program:Minic.Ast.program -> unit ->
  (report_key * diff_entry list) list
(** One bucket per key over {!representatives}, first-seen order;
    inside a bucket the smallest reproducer leads. *)

val report_representatives :
  t -> Oracle.t -> ?program:Minic.Ast.program -> unit -> diff_entry list
(** The lead entry of every {!report_buckets} bucket: what a human
    should actually read. *)

val entry_deep : Oracle.t -> ?limit:int -> diff_entry -> Localize.deep option
(** Instruction-level localization of one entry
    ({!Localize.deep_of_divergence} on the reduced reproducer when one
    is attached, else on the raw input); [None] when the observations
    hold no divergent pair.  Expensive: records two [Steps]-level
    traces. *)

(** {2 Root-cause suggestion}

    Maps a localized divergence through UnstableCheck's static findings
    to a Table 5 root-cause label: the analyzer names the sites whose
    semantics are implementation-defined, the localization names the
    function where behaviour first diverged, and their intersection
    attributes the bug. *)

type root_cause = {
  rc_label : string;                    (** Table 5 category *)
  rc_finding : Staticcheck.Finding.t;   (** the supporting static finding *)
  rc_in_function : bool;
      (** the finding lies in the function that diverged *)
}

val table5_label : Staticcheck.Finding.kind -> string
(** Finding kind -> Table 5 category name ([UninitMem], [IntError],
    [MemError], [PointerCmp], [Misc.]). *)

val suggest_root_cause :
  Minic.Ast.program -> Localize.localization -> root_cause option
(** Run UnstableCheck over the (untyped) program and pick the finding
    that best explains the localization; [None] when the analyzer is
    silent. *)

val root_cause_to_string : root_cause -> string

(** {2 Meta-checker tally}

    Table-3-style FP/FN accounting per (tool, Table 5 bucket), fed by
    the metamorphic meta-checker's flags. *)

module Tally : sig
  type counts = {
    mutable fp : int;      (** reports surviving a UB-eliminating rewrite *)
    mutable fn : int;      (** reports lost under a UB-preserving rewrite *)
    mutable xfn : int;     (** oracle-cross-validated silent sanitizers *)
    mutable drift : int;   (** informational verdict changes *)
  }

  type t

  val create : unit -> t

  val bump :
    t -> tool:string -> bucket:string -> [ `Fp | `Fn | `Xfn | `Drift ] -> unit

  val rows : t -> ((string * string) * counts) list
  (** Rows in first-bump order, keyed by (tool, bucket). *)

  val total : t -> counts

  val to_string : t -> string
  (** Rendered table with a trailing total row. *)
end
