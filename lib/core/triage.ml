(* Divergence triage.

   Many inputs trigger the same underlying bug; like AFL crash dedup,
   divergences are bucketed by a signature. Our signature is the shape of
   the behaviour partition: which implementations agree with which (not
   the concrete outputs, which often vary with the input bytes). *)

type reduced = {
  red_input : string;
  red_observations : (string * Oracle.observation) list;
  red_checks : int;
}

type diff_entry = {
  input : string;
  observations : (string * Oracle.observation) list;
  signature : int;
  mutable reduced : reduced option;
}

(* canonical-form partition signature: rename class ids in first-seen
   order so the signature depends only on the grouping *)
let signature_of_partition (classes : int array) : int =
  let canon = Array.make (Array.length classes) 0 in
  let next = ref 0 in
  let map = Hashtbl.create 8 in
  Array.iteri
    (fun i c ->
      match Hashtbl.find_opt map c with
      | Some id -> canon.(i) <- id
      | None ->
        Hashtbl.add map c !next;
        canon.(i) <- !next;
        incr next)
    classes;
  let s = String.concat "," (Array.to_list (Array.map string_of_int canon)) in
  Cdutil.Murmur3.hash s

type t = {
  mutable entries : diff_entry list;      (* newest first *)
  mutable signatures : (int, int) Hashtbl.t; (* signature -> count *)
}

let create () = { entries = []; signatures = Hashtbl.create 16 }

let add t (oracle : Oracle.t) ~(input : string)
    (obs : (string * Oracle.observation) list) : [ `New | `Duplicate ] =
  let classes = Oracle.partition oracle obs in
  let signature = signature_of_partition classes in
  let entry = { input; observations = obs; signature; reduced = None } in
  t.entries <- entry :: t.entries;
  match Hashtbl.find_opt t.signatures signature with
  | Some n ->
    Hashtbl.replace t.signatures signature (n + 1);
    `Duplicate
  | None ->
    Hashtbl.add t.signatures signature 1;
    `New

let unique_count t = Hashtbl.length t.signatures
let total_count t = List.length t.entries
let entries t = List.rev t.entries

(* Attach a reduced reproducer to the (most recent) entry holding the
   raw input it was reduced from. *)
let attach_reduced t ~(input : string) (r : reduced) : unit =
  match List.find_opt (fun e -> e.input = input) t.entries with
  | Some e -> e.reduced <- Some r
  | None -> ()

let reduced_count t =
  List.length (List.filter (fun e -> e.reduced <> None) t.entries)

(* total (raw, reduced) input bytes over the entries that were reduced *)
let reduction_bytes t : int * int =
  List.fold_left
    (fun (raw, red) e ->
      match e.reduced with
      | Some r -> (raw + String.length e.input, red + String.length r.red_input)
      | None -> (raw, red))
    (0, 0) t.entries

(* one representative entry per signature *)
let representatives t : diff_entry list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun e ->
      if Hashtbl.mem seen e.signature then false
      else begin
        Hashtbl.add seen e.signature ();
        true
      end)
    (List.rev t.entries)

(* --- root-cause suggestion (Table 5) ---

   A localized divergence names the function where the observable
   behaviour first differs; UnstableCheck names the sites whose semantics
   are implementation-defined. Intersecting the two attributes the
   divergence to a root-cause category of Table 5. *)

let table5_label (k : Staticcheck.Finding.kind) : string =
  match k with
  | Staticcheck.Finding.Uninit -> "UninitMem"
  | Staticcheck.Finding.Int_error | Staticcheck.Finding.Div_zero -> "IntError"
  | Staticcheck.Finding.Mem_error | Staticcheck.Finding.Null_deref -> "MemError"
  | Staticcheck.Finding.Ptr_sub -> "PointerCmp"
  | Staticcheck.Finding.Bad_call | Staticcheck.Finding.Ub_generic -> "Misc."

type root_cause = {
  rc_label : string;                    (* Table 5 category *)
  rc_finding : Staticcheck.Finding.t;   (* the supporting static finding *)
  rc_in_function : bool;  (* finding lies in the function that diverged *)
}

let suggest_root_cause (p : Minic.Ast.program)
    (l : Localize.localization) : root_cause option =
  let findings =
    Staticcheck.Static_tools.check Staticcheck.Static_tools.Unstable p
  in
  let diverging_fns =
    List.filter_map
      (fun e -> Option.map (fun e -> e.Localize.ev_fn) e)
      [ l.Localize.at_a; l.Localize.at_b ]
  in
  let in_fn (f : Staticcheck.Finding.t) =
    match f.Staticcheck.Finding.func with
    | Some fn -> List.mem fn diverging_fns
    | None -> false
  in
  (* prefer findings inside the diverging function, then detection-grade
     over downgraded ones, then the earliest site *)
  let score (f : Staticcheck.Finding.t) =
    ( (if in_fn f then 0 else 1),
      (match f.Staticcheck.Finding.severity with
      | Staticcheck.Finding.Error -> 0
      | Staticcheck.Finding.Warning -> 1),
      f.Staticcheck.Finding.line )
  in
  List.fold_left
    (fun acc f ->
      match acc with
      | Some g when score g <= score f -> acc
      | _ -> Some f)
    None findings
  |> Option.map (fun (f : Staticcheck.Finding.t) ->
         {
           rc_label = table5_label f.Staticcheck.Finding.kind;
           rc_finding = f;
           rc_in_function = in_fn f;
         })

(* --- second-level dedup for reporting ---

   The partition signature is the cheap online dedup of Algorithm 1.
   For the final report the paper groups by root cause: once reduced
   reproducers exist we can afford the expensive key — the function the
   divergence localizes to plus the Table 5 label UnstableCheck suggests
   for it.  Distinct partition signatures frequently collapse here
   (many behaviour shapes, one bug). *)

type report_key = { rk_fn : string option; rk_label : string option }

let report_key_to_string k =
  Printf.sprintf "%s / %s"
    (Option.value ~default:"(no localized function)" k.rk_fn)
    (Option.value ~default:"(no root cause)" k.rk_label)

(* Key of one entry, computed on the reduced reproducer when present.
   Localization replays on the oracle's binaries at the verdict fuel. *)
let entry_key (oracle : Oracle.t) ?program (e : diff_entry) : report_key =
  let input, obs =
    match e.reduced with
    | Some r -> (r.red_input, r.red_observations)
    | None -> (e.input, e.observations)
  in
  let l = Localize.of_divergence oracle (Oracle.binaries oracle) obs ~input in
  let rk_fn =
    match l with
    | Some l -> (
      match (l.Localize.at_a, l.Localize.at_b) with
      | Some e, _ | None, Some e -> Some e.Localize.ev_fn
      | None, None -> None)
    | None -> None
  in
  let rk_label =
    match (program, l) with
    | Some p, Some l ->
      Option.map (fun rc -> rc.rc_label) (suggest_root_cause p l)
    | _ -> None
  in
  { rk_fn; rk_label }

(* Deep (instruction-level) localization of one entry, on its reduced
   reproducer when the reducer has run: the Table-5 bucket names the
   category, this names the first diverging instruction inside it. *)
let entry_deep (oracle : Oracle.t) ?limit (e : diff_entry) :
    Localize.deep option =
  let input, obs =
    match e.reduced with
    | Some r -> (r.red_input, r.red_observations)
    | None -> (e.input, e.observations)
  in
  Localize.deep_of_divergence ?limit oracle (Oracle.binaries oracle) obs ~input

(* One bucket per (localized function, root cause), in first-seen order;
   inside a bucket the smallest reproducer leads.  Operates on the
   signature representatives, so both dedup levels compose. *)
let report_buckets t (oracle : Oracle.t) ?program () :
    (report_key * diff_entry list) list =
  let buckets = ref [] in
  List.iter
    (fun e ->
      let k = entry_key oracle ?program e in
      if List.mem_assoc k !buckets then
        buckets :=
          List.map
            (fun (k', es) -> if k' = k then (k', e :: es) else (k', es))
            !buckets
      else buckets := !buckets @ [ (k, [ e ]) ])
    (representatives t);
  let size e =
    match e.reduced with
    | Some r -> String.length r.red_input
    | None -> String.length e.input
  in
  List.map
    (fun (k, es) ->
      (k, List.stable_sort (fun a b -> compare (size a) (size b)) (List.rev es)))
    !buckets

let report_representatives t oracle ?program () : diff_entry list =
  List.map (fun (_, es) -> List.hd es) (report_buckets t oracle ?program ())

let root_cause_to_string (rc : root_cause) : string =
  let f = rc.rc_finding in
  Printf.sprintf "suggested root cause: %s -- %s at line %d%s%s\n" rc.rc_label
    f.Staticcheck.Finding.message f.Staticcheck.Finding.line
    (match f.Staticcheck.Finding.func with
    | Some fn -> " in '" ^ fn ^ "'"
    | None -> "")
    (if rc.rc_in_function then "" else " (outside the diverging function)")

(* --- meta-checker tally (Table-3-style FP/FN accounting per tool) ---

   The metamorphic meta-checker flags per-tool verdict changes; this
   accumulates them into one row per (tool, Table 5 bucket), the same
   bucketing the divergence reports use, so checker weaknesses and
   oracle root causes line up in the output. *)

module Tally = struct
  type counts = {
    mutable fp : int;      (* reports surviving a UB-eliminating rewrite *)
    mutable fn : int;      (* reports lost under a UB-preserving rewrite *)
    mutable xfn : int;     (* oracle-cross-validated silent sanitizers *)
    mutable drift : int;   (* informational verdict changes *)
  }

  type t = ((string * string) * counts) list ref  (* (tool, bucket) rows *)

  let create () : t = ref []

  let find (t : t) (key : string * string) : counts =
    match List.assoc_opt key !t with
    | Some c -> c
    | None ->
      let c = { fp = 0; fn = 0; xfn = 0; drift = 0 } in
      t := !t @ [ (key, c) ];
      c

  let bump (t : t) ~tool ~bucket what =
    let c = find t (tool, bucket) in
    match what with
    | `Fp -> c.fp <- c.fp + 1
    | `Fn -> c.fn <- c.fn + 1
    | `Xfn -> c.xfn <- c.xfn + 1
    | `Drift -> c.drift <- c.drift + 1

  let rows (t : t) : ((string * string) * counts) list = !t

  let total (t : t) : counts =
    let acc = { fp = 0; fn = 0; xfn = 0; drift = 0 } in
    List.iter
      (fun (_, c) ->
        acc.fp <- acc.fp + c.fp;
        acc.fn <- acc.fn + c.fn;
        acc.xfn <- acc.xfn + c.xfn;
        acc.drift <- acc.drift + c.drift)
      !t;
    acc

  let to_string (t : t) : string =
    let cells =
      List.map
        (fun ((tool, bucket), c) ->
          [
            tool;
            bucket;
            string_of_int c.fp;
            string_of_int c.fn;
            string_of_int c.xfn;
            string_of_int c.drift;
          ])
        !t
    in
    let tot = total t in
    let cells =
      cells
      @ [
          [
            "total";
            "";
            string_of_int tot.fp;
            string_of_int tot.fn;
            string_of_int tot.xfn;
            string_of_int tot.drift;
          ];
        ]
    in
    Cdutil.Tablefmt.render
      ~aligns:
        Cdutil.Tablefmt.[ Left; Left; Right; Right; Right; Right ]
      ~header:[ "tool"; "bucket"; "FP"; "FN"; "xval-FN"; "drift" ]
      cells
end
