(* Oracle-validated divergence reduction (paper Section 5).

   A saved divergence is a raw havoc-mutated blob; the paper's reports
   are reduced reproducers.  This module shrinks the (program, input)
   pair while preserving the *divergence class*:

     - the canonical signature of the behaviour partition (which
       implementations agree with which), which also pins the first
       disagreeing implementation pair, and
     - the function the divergence localizes to, traced at the fuel the
       verdict was obtained at (Oracle.verdict_fuel) on the linked
       executor.

   Every candidate — a shorter input, a canonicalized byte, a program
   with a statement dropped — is re-validated through Oracle.check
   before it is accepted, so a candidate that diverges *differently*
   (an unrelated bug uncovered by the edit) is rejected rather than
   silently swapped in.  Soundness is therefore trivial: the final pair
   was validated by the very oracle that will judge the report. *)

type cls = {
  cls_signature : int;
  cls_pair : (string * string) option;
  cls_fn : string option;
}

type stats = {
  checks : int;
  input_before : int;
  input_after : int;
  stmts_before : int;
  stmts_after : int;
}

type result = {
  red_input : string;
  red_observations : (string * Oracle.observation) list;
  red_program : Minic.Ast.program option;
  red_class : cls;
  red_stats : stats;
}

let class_of (oracle : Oracle.t) ~(input : string)
    (obs : (string * Oracle.observation) list) : cls =
  let cls_signature =
    Triage.signature_of_partition (Oracle.partition oracle obs)
  in
  let cls_pair = Localize.divergent_pair oracle obs in
  let cls_fn =
    match Localize.of_divergence oracle (Oracle.binaries oracle) obs ~input with
    | Some l -> (
      match (l.Localize.at_a, l.Localize.at_b) with
      | Some e, _ | None, Some e -> Some e.Localize.ev_fn
      | None, None -> None)
    | None -> None
  in
  { cls_signature; cls_pair; cls_fn }

let same_class a b = a.cls_signature = b.cls_signature && a.cls_fn = b.cls_fn

let input_ratio (s : stats) : float =
  if s.input_before = 0 then 0.
  else 1. -. (float_of_int s.input_after /. float_of_int s.input_before)

(* --- input reduction: ddmin, then byte canonicalization --- *)

(* ddmin in its complement-removal form: split the input into [n]
   chunks, try dropping each; on success restart from the shorter input
   at granularity [n - 1], otherwise double [n] until chunks are single
   bytes.  One round's candidates are independent edits of the same
   input, so they are screened as a batch ([test_batch], one batched
   oracle pass) — but acceptance must still be the FIRST passing
   candidate in order, which [test_batch] guarantees. *)
let ddmin ~(test_batch : string array -> string option) (s0 : string) : string =
  let current = ref s0 in
  let n = ref 2 in
  let continue_ = ref (String.length s0 > 0) in
  while !continue_ do
    let len = String.length !current in
    if len = 0 then continue_ := false
    else begin
      let n' = min !n len in
      let chunk = (len + n' - 1) / n' in
      let nchunks = (len + chunk - 1) / chunk in
      let cands =
        Array.init nchunks (fun i ->
            let lo = i * chunk and hi = min len ((i + 1) * chunk) in
            String.sub !current 0 lo ^ String.sub !current hi (len - hi))
      in
      match test_batch cands with
      | Some cand ->
        current := cand;
        n := max 2 (n' - 1)
      | None ->
        if chunk <= 1 then continue_ := false else n := min (2 * n') len
    end
  done;
  !current

(* Canonicalize the surviving bytes: prefer '\000', else a printable
   digit, so the reproducer reads as regular structure plus the few
   bytes that actually matter.  Length never changes. *)
let canonicalize ~(test : string -> bool) (s0 : string) : string =
  let current = ref s0 in
  String.iteri
    (fun i c ->
      let try_byte r =
        if c = r then false
        else begin
          let b = Bytes.of_string !current in
          Bytes.set b i r;
          let cand = Bytes.to_string b in
          if test cand then begin
            current := cand;
            true
          end
          else false
        end
      in
      if not (try_byte '\000') then ignore (try_byte '0'))
    s0;
  !current

(* --- structural program reduction --- *)

open Minic.Ast

(* Pre-order traversal assigning every statement (nested ones included)
   an index; [f i s = Some repl] substitutes [repl] for the statement
   without descending into it, [None] keeps it and descends. *)
let map_stmts (f : int -> stmt -> stmt list option) (p : program) :
    program * int =
  let counter = ref 0 in
  let rec map_block (b : block) : block =
    List.concat_map
      (fun s ->
        let i = !counter in
        incr counter;
        match f i s with
        | Some repl -> repl
        | None ->
          let s' =
            match s.s with
            | SIf (c, a, b2) -> { s with s = SIf (c, map_block a, map_block b2) }
            | SWhile (c, b2) -> { s with s = SWhile (c, map_block b2) }
            | SBlock b2 -> { s with s = SBlock (map_block b2) }
            | SExpr _ | SDecl _ | SReturn _ | SBreak | SContinue | SPrint _ ->
              s
          in
          [ s' ])
      b
  in
  let funcs = List.map (fun fn -> { fn with body = map_block fn.body }) p.funcs in
  ({ p with funcs }, !counter)

let count_stmts (p : program) : int = snd (map_stmts (fun _ _ -> None) p)

let collect_stmts (p : program) : (int * stmt) list =
  let acc = ref [] in
  ignore
    (map_stmts
       (fun i s ->
         acc := (i, s) :: !acc;
         None)
       p);
  List.rev !acc

let zero = { e = EInt 0L; eloc = no_loc }

let is_zero e = match e.e with EInt 0L -> true | _ -> false

(* Candidate replacements for one statement, most aggressive first:
   drop it, flatten branches, zero the expressions it evaluates. *)
let stmt_rewrites (s : stmt) : stmt list list =
  let keep d = [ { s with s = d } ] in
  [ [] ]
  @ (match s.s with
    | SIf (_, a, b) ->
      (if a <> [] then [ keep (SBlock a) ] else [])
      @ if b <> [] then [ keep (SBlock b) ] else []
    | SWhile (_, b) -> if b <> [] then [ keep (SBlock b) ] else []
    | SDecl d when d.dinit <> None && d.dinit <> Some zero ->
      [ keep (SDecl { d with dinit = Some zero }) ]
    | SReturn (Some e) when not (is_zero e) -> [ keep (SReturn (Some zero)) ]
    | SExpr { e = EAssign (l, r); eloc } when not (is_zero r) ->
      [ keep (SExpr { e = EAssign (l, zero); eloc }) ]
    | SPrint (fmt, args) when List.exists (fun a -> not (is_zero a)) args ->
      [ keep (SPrint (fmt, List.map (fun _ -> zero) args)) ]
    | _ -> [])

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

(* All one-step program simplifications, lazily: function drops first
   (the biggest wins), then globals, then per-statement rewrites. *)
let candidates (p : program) : program Seq.t =
  let func_drops =
    Seq.filter_map
      (fun i ->
        if (List.nth p.funcs i).fname = "main" then None
        else Some { p with funcs = drop_nth p.funcs i })
      (Seq.init (List.length p.funcs) Fun.id)
  in
  let global_drops =
    Seq.map
      (fun i -> { p with globals = drop_nth p.globals i })
      (Seq.init (List.length p.globals) Fun.id)
  in
  let stmt_edits =
    Seq.concat_map
      (fun (i, s) ->
        Seq.map
          (fun repl ->
            fst (map_stmts (fun j _ -> if j = i then Some repl else None) p))
          (List.to_seq (stmt_rewrites s)))
      (List.to_seq (collect_stmts p))
  in
  Seq.append func_drops (Seq.append global_drops stmt_edits)

(* --- the reducer --- *)

let default_reoracle (oracle : Oracle.t) (tp : Minic.Tast.tprogram) : Oracle.t =
  (* re-oracles share the parent's session, so revalidating a candidate
     already seen (and re-checking the surviving input) hits the caches *)
  Oracle.create
    ~session:(Oracle.session oracle)
    ~normalize:(Oracle.normalize oracle)
    ~fuel:(Oracle.base_fuel oracle)
    ~max_fuel:(Oracle.fuel_limit oracle)
    ~jobs:(Oracle.jobs oracle) tp

let reduce ?(max_checks = 1_000) ?program ?reoracle (oracle : Oracle.t)
    ~(input : string) (obs : (string * Oracle.observation) list) :
    result option =
  let cls = class_of oracle ~input obs in
  if cls.cls_pair = None then None
  else begin
    let checks = ref 0 in
    let best_obs = ref obs in
    (* one validation = one oracle check (plus the two localization
       traces); a candidate passes iff it still diverges in the same
       class *)
    let test_input cand =
      !checks < max_checks
      && begin
           incr checks;
           match Oracle.check oracle ~input:cand with
           | Oracle.Agree _ -> false
           | Oracle.Diverge obs' ->
             if same_class cls (class_of oracle ~input:cand obs') then begin
               best_obs := obs';
               true
             end
             else false
         end
    in
    (* Batched round screening for ddmin: every candidate of the round
       goes through one batched oracle pass, then the verdicts are
       walked in candidate order — the accepted candidate, the class
       validations performed, and the consumed check budget are
       identical to testing candidates one by one.  (Candidates past
       the first acceptance are observed but not charged, mirroring the
       sequential loop, which never reaches them.) *)
    let screen_batch (cands : string array) : string option =
      let budget = max_checks - !checks in
      if budget <= 0 then None
      else begin
        let cands =
          if Array.length cands > budget then Array.sub cands 0 budget
          else cands
        in
        let verdicts = Oracle.check_batch oracle ~inputs:cands in
        let rec walk i =
          if i >= Array.length cands then None
          else begin
            incr checks;
            match verdicts.(i) with
            | Oracle.Agree _ -> walk (i + 1)
            | Oracle.Diverge obs' ->
              if same_class cls (class_of oracle ~input:cands.(i) obs')
              then begin
                best_obs := obs';
                Some cands.(i)
              end
              else walk (i + 1)
          end
        in
        walk 0
      end
    in
    let red_input =
      canonicalize ~test:test_input (ddmin ~test_batch:screen_batch input)
    in
    let red_program, red_observations, stmts_before, stmts_after =
      match program with
      | None -> (None, !best_obs, 0, 0)
      | Some p0 ->
        let reoracle =
          match reoracle with Some f -> f | None -> default_reoracle oracle
        in
        let prog_obs = ref None in
        let test_program cand =
          !checks < max_checks
          && begin
               match Minic.Typecheck.check_program_result cand with
               | Error _ -> false
               | Ok tp -> (
                 incr checks;
                 let o = reoracle tp in
                 match Oracle.check o ~input:red_input with
                 | Oracle.Agree _ -> false
                 | Oracle.Diverge obs' ->
                   if same_class cls (class_of o ~input:red_input obs') then begin
                     prog_obs := Some obs';
                     true
                   end
                   else false)
             end
        in
        (* greedy fixpoint: apply the first validating one-step
           simplification, rescan from the simplified program *)
        let cur = ref p0 in
        let progressed = ref true in
        while !progressed && !checks < max_checks do
          match Seq.find test_program (candidates !cur) with
          | Some p' -> cur := p'
          | None -> progressed := false
        done;
        if !prog_obs = None then (None, !best_obs, 0, 0)
        else
          ( Some !cur,
            Option.get !prog_obs,
            count_stmts p0,
            count_stmts !cur )
    in
    Some
      {
        red_input;
        red_observations;
        red_program;
        red_class = cls;
        red_stats =
          {
            checks = !checks;
            input_before = String.length input;
            input_after = String.length red_input;
            stmts_before;
            stmts_after;
          };
      }
  end
