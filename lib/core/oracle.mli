(** The CompDiff oracle (paper Section 3.1).

    A program is compiled once with every implementation in the set;
    {!check} runs all resulting binaries on one input, normalizes their
    outputs, and compares MurmurHash3 checksums of
    [(output, termination status)]. For a program with deterministic
    output, any disagreement proves the presence of unstable code (or a
    compiler bug) — the oracle has no false positives by construction.

    Timeouts follow the paper's RQ6: when only part of the binaries hang,
    the fuel budget is escalated (up to [max_fuel]) until the hang set
    stabilizes; an all-hang is agreement, a residual mixed hang a
    divergence.

    Execution is optimized without changing verdicts: binaries with
    equal {!Binsig.signature} are grouped into equivalence classes and
    executed once per class, class runs go through the shared
    {!Cdutil.Pool} when [jobs > 1], and fuel escalation re-runs only the
    classes that hung, reusing finished observations (and their
    [fuel_used]).  {!observe_naive}/{!check_naive} provide the
    sequential dedup-free reference for cross-validation; both paths
    produce structurally identical results. *)

type observation = {
  output : string;          (** normalized stdout *)
  status : Cdvm.Trap.status;
  fuel_used : int;
}

type verdict =
  | Agree of observation
      (** every implementation produced this observation *)
  | Diverge of (string * observation) list
      (** per-implementation observations, in implementation order *)

type stats = {
  checks : int;            (** oracle checks (inputs judged) *)
  vm_execs : int;
      (** observations requested from the engine; equals actual VM
          executions when the session does not cache — with a caching
          session, observation-store hits replay without re-executing
          (see {!Engine.Session.stats}) *)
  dedup_saved : int;       (** executions avoided by binary dedup *)
  escalation_saved : int;  (** executions avoided by incremental escalation *)
}
(** Cumulative execution counters of one oracle ({!observe}/{!check}
    only; the naive path is never counted).
    [vm_execs + dedup_saved + escalation_saved] is what the naive oracle
    would have executed for the same checks. *)

type t

val create :
  ?session:Engine.Session.t ->
  ?profiles:Cdcompiler.Policy.profile list ->
  ?normalize:Normalize.filter ->
  ?fuel:int ->
  ?max_fuel:int ->
  ?compare_status:bool ->
  ?jobs:int ->
  ?dedup:bool ->
  Minic.Tast.tprogram ->
  t
(** [create tp] compiles [tp] with every profile (default: the paper's ten
    implementations). [session] routes compilation, linking and plain
    execution through a shared {!Engine.Session} (unit/image caches and
    observation store); without one the oracle uses a private
    caching-disabled session, which recomputes every stage — the
    historical behaviour. [normalize] post-processes outputs before
    comparison (default: identity). [fuel] is the base execution budget
    (default 200k instructions), escalated ×4 up to [max_fuel] under
    partial timeout. [compare_status:false] restricts the oracle to
    stdout only (the ablation of DESIGN.md). [jobs] (default
    {!Cdutil.Pool.default_jobs}) enables pooled compilation and
    execution when [> 1]; [dedup:false] disables equivalence-class
    grouping. *)

val of_binaries :
  ?session:Engine.Session.t ->
  ?normalize:Normalize.filter ->
  ?fuel:int ->
  ?max_fuel:int ->
  ?compare_status:bool ->
  ?jobs:int ->
  ?dedup:bool ->
  (string * Cdcompiler.Ir.unit_) list ->
  t
(** Like {!create} for already-compiled binaries. *)

val names : t -> string list
(** Implementation names, in the order [Diverge] reports them. *)

val binaries : t -> (string * Cdcompiler.Ir.unit_) list
(** The compiled binaries, for re-execution (e.g. trace localization). *)

val session : t -> Engine.Session.t
(** The engine session this oracle compiles, links and executes through
    (a private caching-disabled one when none was passed to {!create}).
    Derived pipelines — reduction's re-oracles, localization's trace
    images — reuse it so their replays share the caches. *)

val jobs : t -> int

val base_fuel : t -> int
(** The base execution budget this oracle was created with. *)

val fuel_limit : t -> int
(** The escalation cap ([max_fuel] of {!create}). *)

val normalize : t -> Normalize.filter

val verdict_fuel : t -> (string * observation) list -> int
(** The execution budget needed to replay these observations faithfully:
    the maximum [fuel_used] (at least [base_fuel]).  A terminating run
    is identical under any budget at least its [fuel_used]; a hang's
    [fuel_used] is the escalated budget it was observed at.  Trace
    re-executions (localization, reduction) must use this rather than
    the base fuel, or a divergence found after escalation replays as a
    spurious hang. *)

val class_count : t -> int
(** Number of behavioral equivalence classes among the binaries
    (equals the binary count when [~dedup:false]). *)

val classes : t -> int array
(** Class index per binary, in implementation order. *)

val stats : t -> stats
val reset_stats : t -> unit

val stats_to_json : stats -> string
(** The execution counters as one JSON object (the [--stats-json]
    form, also embedded in serve-daemon stats responses). *)

val checksum : t -> observation -> int32
(** The MurmurHash3 checksum CompDiff compares (paper §3.2, "Output
    examination"). *)

val observe : t -> input:string -> (string * observation) list
(** Run every binary on [input] with timeout escalation (deduped,
    pooled, incremental — observationally identical to
    {!observe_naive}). *)

val observe_naive : t -> input:string -> (string * observation) list
(** The sequential reference: every binary, full re-runs on escalation. *)

val observe_batch : t -> inputs:string array -> (string * observation) list array
(** [observe_batch t ~inputs]: element [k] equals
    [observe t ~input:inputs.(k)] (same observations, same cumulative
    stats), but all inputs pending at one fuel level run through a
    single batched VM session per class ({!Engine.Session.run_batch}),
    amortizing arena acquisition and reset.  Escalation is
    level-synchronous: every input follows the base, ×4, … sequence and
    drops out when its hang set stabilizes. *)

val check : t -> input:string -> verdict
(** [observe] followed by checksum comparison. *)

val check_naive : t -> input:string -> verdict
(** [observe_naive] followed by checksum comparison. *)

val check_batch : t -> inputs:string array -> verdict array
(** {!observe_batch} followed by per-input checksum comparison. *)

val is_divergence : verdict -> bool

val find_bug :
  t -> inputs:string list -> (string * (string * observation) list) option
(** First bug-triggering input of the set, with its observations — the
    "save to diffs/" step of Algorithm 1. *)

val detects : t -> inputs:string list -> bool
(** Whether any input of the set triggers a divergence (batched: the
    whole set is observed per class in one VM batch per fuel level). *)

val partition : t -> (string * observation) list -> int array
(** Behaviour classes per implementation (same class = same checksum):
    the raw material of the Figure 1/2 subset studies. *)

val report_to_string : input:string -> (string * observation) list -> string
(** Human-readable divergence report in the paper's bug-report format:
    the triggering input, the reproducing configurations, and the
    divergent outputs. *)
