(** Canonical signatures of compiled binaries.

    [signature u = signature v] implies [u] and [v] behave identically
    (same output, same trap status, same fuel consumption) on every
    input when executed by the plain VM without hooks — the oracle uses
    this to execute one representative per equivalence class. *)

val signature : Cdcompiler.Ir.unit_ -> string
(** Canonical serialization of the unit's code, globals and the
    behaviorally relevant subset of its runtime policy.  Compare with
    string equality (not a hash) for soundness. *)

val may_read_uninit_reg : Cdcompiler.Ir.unit_ -> bool
(** Whether some register of some function may be read before being
    written (must-init dataflow; conservative: true on uncertainty).
    When false, the [uninit_reg] policy cannot affect execution and is
    excluded from the signature. *)

val touches_memory : Cdcompiler.Ir.unit_ -> bool
(** Whether the unit can interact with the VM address space (memory
    instructions, memory builtins, pointer prints, globals, or frame
    slots — slots alone can overflow the stack region, which depends on
    the layout).  When false, the layout and memory policies are
    excluded from the signature. *)
