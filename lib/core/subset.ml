(* Subset studies (Figures 1 and 2, §4.2 and RQ4).

   Every bug is summarized by its behaviour partition: a class id per
   implementation (same class = same normalized output). A subset of
   implementations detects the bug iff it straddles at least two classes.
   Subsets are bitmasks over the implementation list, enumerated for every
   size from 2 to n.

   The study is computed purely from the cached partition arrays — zero
   VM executions: for each bug, a subset mask is UNdetected iff it is a
   (nonempty) submask of one behaviour class's member mask, so
   enumerating each class's submasks once ([s := (s-1) land m]) scores
   every one of the 2^n - 1 masks per bug in output-linear time, instead
   of the reference's per-subset re-scan of every partition.  The
   reference ([study_reference]) is retained for cross-validation. *)

type study_row = {
  size : int;
  box : Cdutil.Stats.box;                 (* detected-bug counts across subsets *)
  best : int * int;                       (* (mask, count) *)
  worst : int * int;
}

(* does the subset [mask] span >= 2 behaviour classes of [classes]? *)
let detects_mask (classes : int array) (mask : int) : bool =
  let seen = ref (-1) in
  let distinct = ref false in
  Array.iteri
    (fun i c ->
      if mask land (1 lsl i) <> 0 then begin
        if !seen = -1 then seen := c else if !seen <> c then distinct := true
      end)
    classes;
  !distinct

(* --- popcount: one 16-bit table lookup per half-word --- *)

let popcount16 =
  lazy
    (let t = Bytes.make 65536 '\000' in
     for i = 1 to 65535 do
       Bytes.set t i
         (Char.chr (Char.code (Bytes.get t (i lsr 1)) + (i land 1)))
     done;
     t)

let popcount mask =
  let t = Lazy.force popcount16 in
  let rec go m acc =
    if m = 0 then acc else go (m lsr 16) (acc + Char.code (Bytes.get t (m land 0xffff)))
  in
  go mask 0

(* --- mask enumeration: bucket all 2^n - 1 masks by popcount in ONE
   pass (the study asks for every size anyway), memoized per n --- *)

let buckets_mutex = Mutex.create ()
let buckets_memo : (int, int list array) Hashtbl.t = Hashtbl.create 4

let masks_by_popcount ~(n : int) : int list array =
  Mutex.lock buckets_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock buckets_mutex)
    (fun () ->
      match Hashtbl.find_opt buckets_memo n with
      | Some b -> b
      | None ->
          let buckets = Array.make (n + 1) [] in
          (* downto + cons keeps each bucket in increasing mask order *)
          for mask = (1 lsl n) - 1 downto 1 do
            let k = popcount mask in
            buckets.(k) <- mask :: buckets.(k)
          done;
          Hashtbl.add buckets_memo n buckets;
          buckets)

let masks_of_size ~n ~size : int list =
  if size < 0 || size > n then [] else (masks_by_popcount ~n).(size)

let count_detected (partitions : int array list) (mask : int) : int =
  List.fold_left
    (fun acc classes -> if detects_mask classes mask then acc + 1 else acc)
    0 partitions

(* one row per subset size, scoring each mask with [score] *)
let rows_of_scores ~min_size ~n (score : int -> int) : study_row list =
  List.init (n - min_size + 1) (fun i ->
      let size = min_size + i in
      let masks = masks_of_size ~n ~size in
      let scored = List.map (fun m -> (m, score m)) masks in
      let counts = List.map snd scored in
      let best =
        List.fold_left (fun (bm, bc) (m, c) -> if c > bc then (m, c) else (bm, bc))
          (0, min_int) scored
      in
      let worst =
        List.fold_left (fun (bm, bc) (m, c) -> if c < bc then (m, c) else (bm, bc))
          (0, max_int) scored
      in
      { size; box = Cdutil.Stats.box_of_ints counts; best; worst })

(* the per-subset recomputation reference: every mask re-scans every
   partition *)
let study_reference ?(min_size = 2) ~(n : int) (partitions : int array list) :
    study_row list =
  rows_of_scores ~min_size ~n (count_detected partitions)

(* Per-bug submask counting: a nonempty mask misses a bug iff all its
   members share one behaviour class, i.e. iff it is a submask of that
   class's member mask (classes partition the implementations, so of at
   most one).  Enumerating every class's nonempty submasks once counts
   the undetecting masks of this bug exactly once each. *)
let undetected_counts ~(n : int) (partitions : int array list) : int array =
  let undetected = Array.make (1 lsl n) 0 in
  List.iter
    (fun (classes : int array) ->
      let member_mask : (int, int) Hashtbl.t = Hashtbl.create 8 in
      Array.iteri
        (fun i c ->
          let cur = Option.value ~default:0 (Hashtbl.find_opt member_mask c) in
          Hashtbl.replace member_mask c (cur lor (1 lsl i)))
        classes;
      Hashtbl.iter
        (fun _ m ->
          let s = ref m in
          while !s <> 0 do
            undetected.(!s) <- undetected.(!s) + 1;
            s := (!s - 1) land m
          done)
        member_mask)
    partitions;
  undetected

(* Full study from the cached partitions alone.  The fast path needs
   every partition to cover exactly the n implementations (mask bits at
   or beyond a short partition's length would count as detected where
   [detects_mask] ignores them), and 2^n counters in memory; otherwise
   fall back to the reference. *)
let study ?(min_size = 2) ~(n : int) (partitions : int array list) :
    study_row list =
  let exact = List.for_all (fun p -> Array.length p = n) partitions in
  if (not exact) || n > 24 then study_reference ~min_size ~n partitions
  else begin
    let nbugs = List.length partitions in
    let undetected = undetected_counts ~n partitions in
    rows_of_scores ~min_size ~n (fun mask -> nbugs - undetected.(mask))
  end

let mask_to_names ~(names : string list) (mask : int) : string list =
  List.filteri (fun i _ -> mask land (1 lsl i) <> 0) names

(* --- the paper's practical recommendation (§4.2): at least two
   instances from different compilers, one unoptimizing and one
   aggressively optimizing --- *)

(* how aggressively a profile rewrites: enabled optimization passes,
   with the inlining budget breaking ties between same-count levels *)
let opt_score (p : Cdcompiler.Policy.profile) : int =
  let f = p.Cdcompiler.Policy.flags in
  let b x = if x then 1 else 0 in
  let nflags =
    b f.Cdcompiler.Policy.constfold + b f.Cdcompiler.Policy.copyprop
    + b f.Cdcompiler.Policy.cse + b f.Cdcompiler.Policy.ub_branch_fold
    + b f.Cdcompiler.Policy.null_check_fold
    + b f.Cdcompiler.Policy.null_deref_trap + b f.Cdcompiler.Policy.dce
    + b f.Cdcompiler.Policy.strength + b f.Cdcompiler.Policy.promote_mul
    + b f.Cdcompiler.Policy.fp_contract + b f.Cdcompiler.Policy.pow_to_exp2
    + b f.Cdcompiler.Policy.promote_scalars
    + b f.Cdcompiler.Policy.unsafe_copyprop
  in
  (nflags * 128) + min f.Cdcompiler.Policy.inline_limit 127

let recommend ?(profiles = Cdcompiler.Profiles.all) ~(names : string list) () :
    string list =
  (* the profiles actually in play, in [names] order *)
  let known =
    List.filter_map
      (fun nm ->
        List.find_opt (fun p -> p.Cdcompiler.Policy.pname = nm) profiles)
      names
  in
  let pick better = function
    | [] -> None
    | p :: ps ->
        Some (List.fold_left (fun a b -> if better b a then b else a) p ps)
  in
  let least = pick (fun a b -> opt_score a < opt_score b) known in
  match least with
  | Some lo when List.length known >= 2 ->
      let rest =
        List.filter (fun p -> p.Cdcompiler.Policy.pname <> lo.Cdcompiler.Policy.pname) known
      in
      let other_family =
        List.filter
          (fun p -> p.Cdcompiler.Policy.family <> lo.Cdcompiler.Policy.family)
          rest
      in
      let candidates = if other_family <> [] then other_family else rest in
      let hi =
        Option.get (pick (fun a b -> opt_score a > opt_score b) candidates)
      in
      [ lo.Cdcompiler.Policy.pname; hi.Cdcompiler.Policy.pname ]
  | _ -> (
    (* names outside the profile list: degrade to the endpoints *)
    match names with
    | x :: _ -> (
      match List.rev names with
      | y :: _ when y <> x -> [ x; y ]
      | _ -> [ x ])
    | [] -> [])
