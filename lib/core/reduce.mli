(** Oracle-validated divergence reduction (paper §5).

    The reporting pipeline does not end when a diverging input is saved:
    the paper's real-world reports are all *reduced* reproducers.  This
    module shrinks a diverging [(program, input)] pair with delta
    debugging (Zeller & Hildebrandt's ddmin over the input bytes, then
    byte canonicalization to zero/printable, then structural program
    reduction), re-validating every candidate through {!Oracle.check} so
    the reduced pair still exhibits the {e same} divergence:

    - the behaviour partition keeps the same canonical signature
      ({!Triage.signature_of_partition}), which pins the implementation
      pair the divergence is between, and
    - the divergence still localizes to the same function
      ({!Localize.between} granularity), with traces replayed at
      {!Oracle.verdict_fuel} on the linked executor.

    A candidate that merely diverges differently (a new bug uncovered by
    the edit) is rejected, so reduction can only preserve the original
    root cause.  The reduced input never grows and the reduced program
    never gains statements, by construction. *)

type cls = {
  cls_signature : int;
      (** canonical partition signature of the behaviour classes *)
  cls_pair : (string * string) option;
      (** the first disagreeing implementation pair (a function of the
          partition, so preserved whenever the signature is) *)
  cls_fn : string option;
      (** function the divergence localizes to; [None] when the
          observable traces are identical (status-only divergence) *)
}
(** What a reduction step must preserve: the divergence class. *)

type stats = {
  checks : int;          (** oracle validations spent *)
  input_before : int;    (** raw input size, bytes *)
  input_after : int;     (** reduced input size, bytes *)
  stmts_before : int;    (** program statements (0 if not reduced) *)
  stmts_after : int;
}

type result = {
  red_input : string;
  red_observations : (string * Oracle.observation) list;
      (** observations of the final validated reduced pair *)
  red_program : Minic.Ast.program option;
      (** the structurally reduced program, when program reduction ran
          and made progress *)
  red_class : cls;
  red_stats : stats;
}

val class_of :
  Oracle.t -> input:string -> (string * Oracle.observation) list -> cls
(** The divergence class of a verdict: partition signature, first
    disagreeing pair, and localized function (traced at
    {!Oracle.verdict_fuel}). *)

val input_ratio : stats -> float
(** [1 - after/before] (0 when the input was already empty). *)

val count_stmts : Minic.Ast.program -> int
(** Statements in pre-order, nested blocks included (the program-size
    metric of {!stats}). *)

val reduce :
  ?max_checks:int ->
  ?program:Minic.Ast.program ->
  ?reoracle:(Minic.Tast.tprogram -> Oracle.t) ->
  Oracle.t ->
  input:string ->
  (string * Oracle.observation) list ->
  result option
(** [reduce oracle ~input obs] shrinks a divergence previously observed
    as [obs = Oracle.observe oracle ~input].  Returns [None] when [obs]
    is not actually a divergence.

    Input reduction (ddmin + canonicalization) always runs and uses
    [oracle] directly, one {!Oracle.check} per candidate — deduped,
    pooled and linked exactly like any other check, so reduction
    inherits the executor's parallelism.

    Program reduction runs when [program] (the untyped AST the oracle's
    binaries were compiled from) is given: statements are dropped,
    branches flattened, expressions canonicalized to zero, functions and
    globals removed — greedily, revalidating after every step.  Each
    accepted candidate is recompiled through [reoracle] (default: an
    oracle with the paper's ten implementations and this oracle's
    normalize/fuel settings; pass an explicit factory when the original
    used a different profile set).

    [max_checks] (default 1000) bounds the total validation budget. *)
