(* Canonical signatures of compiled binaries, for oracle dedup.

   Two binaries with equal signatures behave identically on every input
   when executed by the plain VM (no hooks), so the oracle can execute
   one representative per signature class and share the observation.

   The signature covers:
   - the full code, slots and globals of every function (with float
     immediates serialized by their IEEE bits, since ["%g"] printing can
     collapse distinct values, and cast widths spelled out);
   - only the *behaviorally relevant* part of the runtime policy:
     [uninit_reg] matters only if some register may be read before it is
     written (decided by a must-init dataflow analysis), and the memory
     policies (layout, [uninit_heap], [stack_seed], [ptrcmp],
     [memcpy_backward]) matter only if the unit can touch the address
     space at all.  Note that a function with frame slots depends on the
     layout even if it never loads or stores: frame placement alone can
     raise [Stack_overflow] ([Mem.push_frame]).

   [impl_name] and [code_lines] never affect execution and are
   excluded. *)

open Cdcompiler

(* --- may some register be read before it is written? ---

   Forward must-init dataflow: a register is initialized at [pc] if it
   is written on *every* path from entry to [pc] (parameters start
   initialized).  Meet is set intersection; states only shrink, and the
   flag below is re-evaluated on every re-visit, so the final visit of
   each pc checks uses against its fixpoint state. *)

let may_read_uninit_func (f : Ir.ifunc) : bool =
  let n = Array.length f.Ir.code in
  if n = 0 then false
  else begin
    let nregs = max f.Ir.nregs (max f.Ir.nparams 1) in
    let label_pc = Hashtbl.create 16 in
    Array.iteri
      (fun i ins ->
        match ins with Ir.Ilabel l -> Hashtbl.replace label_pc l i | _ -> ())
      f.Ir.code;
    let inits : Bytes.t option array = Array.make n None in
    let queue = Queue.create () in
    let suspicious = ref false in
    let join pc (s : Bytes.t) =
      match inits.(pc) with
      | None ->
          inits.(pc) <- Some (Bytes.copy s);
          Queue.add pc queue
      | Some old ->
          let changed = ref false in
          for r = 0 to nregs - 1 do
            if Bytes.get old r <> '\000' && Bytes.get s r = '\000' then begin
              Bytes.set old r '\000';
              changed := true
            end
          done;
          if !changed then Queue.add pc queue
    in
    let jump_target l =
      match Hashtbl.find_opt label_pc l with
      | Some pc -> Some pc
      | None ->
          (* malformed code: give up soundly *)
          suspicious := true;
          None
    in
    let entry = Bytes.make nregs '\000' in
    for r = 0 to min f.Ir.nparams nregs - 1 do
      Bytes.set entry r '\001'
    done;
    join 0 entry;
    while (not !suspicious) && not (Queue.is_empty queue) do
      let pc = Queue.pop queue in
      match inits.(pc) with
      | None -> ()
      | Some s ->
          let ins = f.Ir.code.(pc) in
          List.iter
            (fun r ->
              if r >= nregs || Bytes.get s r = '\000' then suspicious := true)
            (Ir.uses ins);
          let out = Bytes.copy s in
          (match Ir.def ins with
          | Some r when r < nregs -> Bytes.set out r '\001'
          | _ -> ());
          (match ins with
          | Ir.Ijmp l -> Option.iter (fun pc' -> join pc' out) (jump_target l)
          | Ir.Ibr (_, lt, lf) ->
              Option.iter (fun pc' -> join pc' out) (jump_target lt);
              Option.iter (fun pc' -> join pc' out) (jump_target lf)
          | Ir.Iret _ | Ir.Itrap _ -> ()
          | _ -> if pc + 1 < n then join (pc + 1) out)
    done;
    !suspicious
  end

let may_read_uninit_reg (u : Ir.unit_) : bool =
  List.exists (fun (_, f) -> may_read_uninit_func f) u.Ir.funcs

(* --- can the unit touch the address space? --- *)

let builtin_touches_memory = function
  | "malloc" | "free" | "memset" | "memcpy" | "strlen" -> true
  | _ -> false

let instr_touches_memory = function
  | Ir.Ilea _ | Ir.Iload _ | Ir.Istore _ | Ir.Ipadd _ | Ir.Ipdiff _
  | Ir.Ipcmp _ ->
      true
  | Ir.Icast ((Ir.P2I _ | Ir.I2P), _, _) -> true
  | Ir.Ibuiltin (_, name, _) -> builtin_touches_memory name
  | Ir.Iprint items ->
      List.exists
        (function Ir.Fptr _ | Ir.Fstr _ -> true | _ -> false)
        items
  | _ -> false

let touches_memory (u : Ir.unit_) : bool =
  u.Ir.globals <> []
  || List.exists
       (fun (_, f) ->
         Array.length f.Ir.slots > 0
         || Array.exists instr_touches_memory f.Ir.code)
       u.Ir.funcs

(* --- serialization --- *)

(* [Ir.string_of_instr] is almost injective; patch up the cases where it
   is not: float immediates print with "%g" (lossy), cast widths are
   omitted for i2f/f2i/p2i, and neg omits its csem marker. *)

let float_bits_of_operand = function
  | Ir.ImmF f -> [ Int64.bits_of_float f ]
  | Ir.Reg _ | Ir.ImmI _ | Ir.Nullptr -> []

let float_bits_of_instr ins =
  let op = float_bits_of_operand in
  match ins with
  | Ir.Iconst (_, o) | Ir.Imov (_, o) | Ir.Ineg (_, _, _, o)
  | Ir.Inot (_, _, o) | Ir.Ifneg (_, o) | Ir.Icast (_, _, o)
  | Ir.Iload (_, o) | Ir.Ibr (o, _, _) | Ir.Iret (Some o) ->
      op o
  | Ir.Ibin (_, _, _, _, a, b) | Ir.Ifbin (_, _, a, b)
  | Ir.Icmp (_, _, _, a, b) | Ir.Ifcmp (_, _, a, b) | Ir.Ipcmp (_, _, a, b)
  | Ir.Ipadd (_, a, b) | Ir.Ipdiff (_, a, b) | Ir.Istore (a, b) ->
      op a @ op b
  | Ir.Ifma (_, a, b, c) -> op a @ op b @ op c
  | Ir.Icall (_, _, args) | Ir.Ibuiltin (_, _, args) ->
      List.concat_map op args
  | Ir.Iprint items -> List.concat_map op (Ir.fmt_operands items)
  | Ir.Ilea _ | Ir.Ijmp _ | Ir.Iret None | Ir.Ilabel _ | Ir.Itrap _ -> []

let add_instr buf ins =
  Buffer.add_string buf (Ir.string_of_instr ins);
  (match ins with
  | Ir.Icast ((Ir.I2F w | Ir.F2I w | Ir.P2I w), _, _) ->
      Buffer.add_string buf (" #w" ^ Ir.string_of_width w)
  | Ir.Ineg (_, sem, _, _) ->
      Buffer.add_string buf
        (match sem with Ir.Csigned -> " #s" | Ir.Cwrap -> " #w")
  | _ -> ());
  List.iter
    (fun bits ->
      Buffer.add_string buf (" #f" ^ Int64.to_string bits))
    (float_bits_of_instr ins);
  Buffer.add_char buf '\n'

let signature (u : Ir.unit_) : string =
  let buf = Buffer.create 2048 in
  List.iter
    (fun (name, f) ->
      Buffer.add_string buf
        (Printf.sprintf "func %s p%d r%d\n" name f.Ir.nparams f.Ir.nregs);
      Array.iter
        (fun (s : Ir.frame_slot) ->
          Buffer.add_string buf (Printf.sprintf "slot %d\n" s.Ir.slot_size))
        f.Ir.slots;
      Array.iter (add_instr buf) f.Ir.code)
    u.Ir.funcs;
  List.iter
    (fun (g : Ir.iglobal) ->
      Buffer.add_string buf
        (Printf.sprintf "global %s %d [%s]\n" g.Ir.g_name g.Ir.g_size
           (String.concat "," (List.map Int64.to_string g.Ir.g_init))))
    u.Ir.globals;
  if touches_memory u then begin
    Buffer.add_string buf "mem ";
    Buffer.add_string buf (Policy.memory_runtime_signature u.Ir.runtime);
    Buffer.add_char buf '\n'
  end;
  if may_read_uninit_reg u then begin
    Buffer.add_string buf "ureg ";
    Buffer.add_string buf (Policy.uninit_signature u.Ir.runtime.Policy.uninit_reg);
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf
