(** Subset studies over compiler implementations (Figures 1 and 2,
    §4.2/RQ4).

    A detected bug is summarized by its behaviour partition — one class id
    per implementation (see {!Oracle.partition}). A subset of
    implementations detects the bug iff it spans at least two classes.
    Subsets are bitmasks over the implementation list.

    {!study} runs entirely on the cached partition arrays (no VM
    executions): per bug, the masks that miss it are exactly the
    nonempty submasks of its behaviour classes' member masks, counted
    once each by submask enumeration.  {!study_reference} keeps the
    per-subset recomputation for cross-validation. *)

type study_row = {
  size : int;                        (** subset size *)
  box : Cdutil.Stats.box;            (** detected-bug counts over all subsets *)
  best : int * int;                  (** (mask, detected count) *)
  worst : int * int;
}

val detects_mask : int array -> int -> bool
(** [detects_mask classes mask]: does the subset straddle two behaviour
    classes? *)

val popcount : int -> int
(** Table-driven (16-bit lookups). *)

val masks_by_popcount : n:int -> int list array
(** All masks over [n] implementations bucketed by popcount in a single
    enumeration pass; index [k] holds the C(n,k) masks of size [k] in
    increasing order (index 0 is empty).  Memoized per [n]. *)

val masks_of_size : n:int -> size:int -> int list
(** All C(n, size) subsets as bitmasks ([masks_by_popcount] bucket). *)

val count_detected : int array list -> int -> int
(** Bugs (partitions) detected by one subset. *)

val study : ?min_size:int -> n:int -> int array list -> study_row list
(** One row per subset size from [min_size] (default 2) to [n]: the data
    behind the box plots of Figures 1 and 2.  Computed from the
    partitions alone; falls back to {!study_reference} when a partition
    does not cover exactly [n] implementations. *)

val study_reference : ?min_size:int -> n:int -> int array list -> study_row list
(** The per-subset recomputation reference ({!count_detected} on every
    mask); structurally identical results to {!study}. *)

val mask_to_names : names:string list -> int -> string list

val recommend :
  ?profiles:Cdcompiler.Policy.profile list -> names:string list -> unit ->
  string list
(** The paper's practical advice (§4.2): two instances from different
    compilers, one unoptimizing and one aggressively optimizing — chosen
    by each profile's enabled-optimization score from [profiles]
    (default {!Cdcompiler.Profiles.all}), restricted to [names].  Names
    not in the profile list degrade to the first/last endpoints. *)
