(* Fault-localization prototype (paper Section 5, "Fault localization and
   bug report").

   The paper observes that CompDiff bugs need not crash, so stack traces
   are unavailable, and proposes comparing execution traces across
   binaries — hard in general because optimizations reshape control flow.
   This prototype uses the one trace level optimizations must preserve:
   the sequence of *observable events* (executed print statements), each
   tagged with its enclosing function. The first event where two binaries
   disagree localizes the divergence to a function and an event index,
   which is exactly the paper's bug-report granularity plus a starting
   point for diagnosis. *)

type event = {
  ev_fn : string;      (* enclosing function of the print *)
  ev_text : string;    (* rendered output of that statement *)
}

type localization = {
  impl_a : string;
  impl_b : string;
  event_index : int;                 (* first differing observable event *)
  before : event list;               (* shared prefix (up to 3 events) *)
  at_a : event option;               (* the differing event in each binary *)
  at_b : event option;
}

(* Output-heavy fuzz finds can emit one event per instruction; the cap
   keeps a trace proportional to what a human (or the aligner) will ever
   look at.  Generous: a 200k-fuel run cannot exceed 200k prints. *)
let default_event_limit = 100_000

(* running counters over both localization levels, surfaced via
   {!stats_to_json} (the --stats-json form) *)
let stat_shallow = Atomic.make 0
let stat_deep = Atomic.make 0
let stat_probes = Atomic.make 0

let stats_to_json () : string =
  Printf.sprintf "{\"shallow\": %d, \"deep\": %d, \"bisection_probes\": %d}"
    (Atomic.get stat_shallow) (Atomic.get stat_deep) (Atomic.get stat_probes)

let stats_to_string () : string =
  Printf.sprintf
    "localize: %d event-level, %d instruction-level localizations, %d \
     bisection probes\n"
    (Atomic.get stat_shallow) (Atomic.get stat_deep) (Atomic.get stat_probes)

let reset_stats () =
  Atomic.set stat_shallow 0;
  Atomic.set stat_deep 0;
  Atomic.set stat_probes 0

(* Run one pre-linked binary collecting its observable-event trace.
   Events past [limit] are dropped and the returned flag says so. *)
let trace_image ?(fuel = 200_000) ?(limit = default_event_limit)
    (img : Cdvm.Image.t) ~(input : string) :
    event list * Cdvm.Trap.status * bool =
  let events = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  let on_print ~fn text =
    if !count < limit then begin
      events := { ev_fn = fn; ev_text = text } :: !events;
      incr count
    end
    else truncated := true
  in
  let r =
    Cdvm.Exec.run_linked
      ~config:
        {
          Cdvm.Exec.default_config with
          Cdvm.Exec.input;
          fuel;
          observer = Cdvm.Observer.prints on_print;
        }
      img
  in
  (List.rev !events, r.Cdvm.Exec.status, !truncated)

(* Run one binary collecting its observable-event trace.  With a session
   the (re-)link is served by the image cache; the traced execution
   itself must NOT go through the observation store (the observer makes
   it more than a function of (image, input, fuel)), so it always runs. *)
let trace ?session ?fuel ?limit (u : Cdcompiler.Ir.unit_) ~(input : string) :
    event list * Cdvm.Trap.status * bool =
  let img =
    match session with
    | Some s -> Engine.Session.image (Engine.Session.link s u)
    | None -> Cdvm.Image.link u
  in
  trace_image ?fuel ?limit img ~input

let rec first_diff i (a : event list) (b : event list) =
  match (a, b) with
  | [], [] -> None
  | x :: xs, y :: ys when x = y -> first_diff (i + 1) xs ys
  | x :: _, y :: _ -> Some (i, Some x, Some y)
  | x :: _, [] -> Some (i, Some x, None)
  | [], y :: _ -> Some (i, None, Some y)

let take n l = List.filteri (fun i _ -> i < n) l

(* Localize a divergence between two named implementations. Returns
   [None] when their observable traces are identical (the divergence is
   then in the termination status only). *)
let between ?session ?fuel ?limit ~(impl_a : string * Cdcompiler.Ir.unit_)
    ~(impl_b : string * Cdcompiler.Ir.unit_) ~(input : string) () :
    localization option =
  let name_a, ua = impl_a and name_b, ub = impl_b in
  Atomic.incr stat_shallow;
  (* the two traced runs are independent; go through the shared pool
     like every other pairwise path *)
  let ta, tb =
    match
      Cdutil.Pool.map
        (fun u -> let ev, _, _ = trace ?session ?fuel ?limit u ~input in ev)
        [ ua; ub ]
    with
    | [ ta; tb ] -> (ta, tb)
    | _ -> assert false
  in
  match first_diff 0 ta tb with
  | None -> None
  | Some (i, ea, eb) ->
    let prefix = take i ta in
    let before =
      let n = List.length prefix in
      List.filteri (fun j _ -> j >= n - 3) prefix
    in
    Some { impl_a = name_a; impl_b = name_b; event_index = i; before; at_a = ea; at_b = eb }

(* The first pair of implementations whose observations disagree: the
   leftmost binary plus the leftmost one differing from it.  The pair is
   a function of the behaviour partition, so any reduction step that
   preserves the partition signature preserves it too. *)
let divergent_pair (oracle : Oracle.t)
    (obs : (string * Oracle.observation) list) : (string * string) option =
  match obs with
  | [] -> None
  | (first_name, first_obs) :: rest ->
    let c0 = Oracle.checksum oracle first_obs in
    Option.map
      (fun (other_name, _) -> (first_name, other_name))
      (List.find_opt (fun (_, o) -> Oracle.checksum oracle o <> c0) rest)

(* Pick two implementations with differing observations from an oracle
   divergence and localize between them.  Traces replay at the fuel the
   verdict was actually obtained at ({!Oracle.verdict_fuel}) unless the
   caller overrides it: a divergence found after escalation would
   otherwise localize as a spurious hang. *)
let of_divergence ?fuel (oracle : Oracle.t)
    (binaries : (string * Cdcompiler.Ir.unit_) list)
    (obs : (string * Oracle.observation) list) ~(input : string) :
    localization option =
  match divergent_pair oracle obs with
  | None -> None
  | Some (first_name, other_name) -> (
    let fuel =
      match fuel with Some f -> f | None -> Oracle.verdict_fuel oracle obs
    in
    match
      ( List.find_opt (fun (n, _) -> n = first_name) binaries,
        List.find_opt (fun (n, _) -> n = other_name) binaries )
    with
    | Some a, Some b ->
      between ~session:(Oracle.session oracle) ~fuel ~impl_a:a ~impl_b:b
        ~input ()
    | _ -> None)

(* --- deep (instruction-level) localization (DESIGN.md §15) ---

   Step indices of two different binaries are incomparable: optimization
   reshapes the instruction stream, so "step 123 of A" names nothing in
   B.  Deep localization therefore aligns on two things the compilers
   must preserve:

   - the observable-event skeleton (executed prints) anchors a window:
     the divergence lies between the last event the binaries agree on
     and the first one they disagree on;
   - inside the window, every recorded write is projected to its
     (source line, kind, written value) -- register numbers and frame
     addresses are per-binary artifacts, but the values a correct
     optimization computes per source line are not.

   The first index at which the two projected write sequences differ is
   found by bisection over prefix equality (the projections agree on a
   prefix and disagree ever after, by construction of "first"), and maps
   back to a concrete (step, pc, function, line, value) on each side:
   the first diverging instruction at the granularity the trace store
   can see. *)

type probe = {
  pr_step : int;               (* step index in that binary's trace *)
  pr_fn : string;
  pr_pc : int;
  pr_line : int option;        (* via the pc -> line table *)
  pr_kind : [ `Reg | `Mem ];
  pr_value : string;           (* rendered written value *)
  pr_cmp : string;             (* comparison form: object ids erased *)
}

type deep_side = {
  ds_impl : string;
  ds_steps : int;              (* trace length *)
  ds_truncated : bool;
  ds_window : int * int;       (* [lo, hi) step window searched *)
  ds_at : probe option;        (* first diverging write, this side *)
}

type deep = {
  deep_a : deep_side;
  deep_b : deep_side;
  anchor_event : int;          (* last agreeing observable event; -1 none *)
  diverging_event : int option;(* first differing observable event *)
  probes : int;                (* bisection probes spent *)
  diff : string;               (* rendered value / event / status diff *)
}

let probe_key (p : probe) = (p.pr_line, p.pr_kind, p.pr_cmp)

(* Pointer object ids are per-binary allocation numbering, not
   semantics: two correct binaries laying frames out differently write
   "different" pointers everywhere.  Compare pointers by offset only. *)
let cmp_value (v : Cdvm.Value.t) : string =
  match v with
  | Cdvm.Value.Vptr p -> Printf.sprintf "<ptr+%d>" p.Cdvm.Value.off
  | v -> Cdvm.Value.to_string v

(* all writes of steps [lo, hi), projected to source coordinates *)
let project (tr : Cdtrace.t) ~(lo : int) ~(hi : int) : probe array =
  let out = ref [] in
  Cdtrace.iter tr (fun sv ->
      if sv.Cdtrace.sv_ix >= lo && sv.Cdtrace.sv_ix < hi then
        List.iter
          (fun it ->
            let add kind v =
              out :=
                {
                  pr_step = sv.Cdtrace.sv_ix;
                  pr_fn = Cdtrace.func_name tr sv.Cdtrace.sv_fi;
                  pr_pc = sv.Cdtrace.sv_pc;
                  pr_line =
                    Cdtrace.line_of tr ~fi:sv.Cdtrace.sv_fi ~pc:sv.Cdtrace.sv_pc;
                  pr_kind = kind;
                  pr_value = Cdvm.Value.to_string v;
                  pr_cmp = cmp_value v;
                }
                :: !out
            in
            match it with
            | Cdtrace.Wreg (_, v) -> add `Reg v
            | Cdtrace.Wmem (_, v) -> add `Mem v
            | Cdtrace.Call _ | Cdtrace.Ret | Cdtrace.Print _ -> ())
          sv.Cdtrace.sv_items);
  Array.of_list (List.rev !out)

(* length of the common (line, kind, value) prefix, by bisection *)
let common_prefix (pa : probe array) (pb : probe array) : int * int =
  let n = min (Array.length pa) (Array.length pb) in
  let prefix_eq k =
    let eq = ref true in
    let i = ref 0 in
    while !eq && !i < k do
      if probe_key pa.(!i) <> probe_key pb.(!i) then eq := false;
      incr i
    done;
    !eq
  in
  let probes = ref 0 in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    incr probes;
    if prefix_eq mid then lo := mid else hi := mid - 1
  done;
  (!lo, !probes)

(* the (fi, pc) of step [s], for synthesizing probes at event steps *)
let probe_at (tr : Cdtrace.t) (s : int) ~(value : string) : probe option =
  if s < 0 || s >= Cdtrace.length tr then None
  else begin
    let c = Cdtrace.cursor tr in
    Cdtrace.seek c s;
    match Cdtrace.peek c with
    | None -> None
    | Some (fi, pc, _) ->
      Some
        {
          pr_step = s;
          pr_fn = Cdtrace.func_name tr fi;
          pr_pc = pc;
          pr_line = Cdtrace.line_of tr ~fi ~pc;
          pr_kind = `Mem;
          pr_value = value;
          pr_cmp = value;
        }
  end

let probe_place (p : probe) : string =
  Printf.sprintf "step %d, %s@%d%s" p.pr_step p.pr_fn p.pr_pc
    (match p.pr_line with
    | Some l -> Printf.sprintf " (line %d)" l
    | None -> "")

(* Localize between two recorded traces of the same (program, input).
   Total: some divergence explanation always comes back — a projected
   write mismatch, a differing observable event, or a status/output
   difference, in that order of preference. *)
let deep_of_traces (ta : Cdtrace.t) (tb : Cdtrace.t) : deep =
  Atomic.incr stat_deep;
  let ea = ta.Cdtrace.events and eb = tb.Cdtrace.events in
  let nshared = min (Array.length ea) (Array.length eb) in
  let m = ref 0 in
  while
    !m < nshared
    && (let _, fa, xa = ea.(!m) and _, fb, xb = eb.(!m) in
        fa = fb && xa = xb)
  do
    incr m
  done;
  let m = !m in
  let diverging_event =
    if m < Array.length ea || m < Array.length eb then Some m else None
  in
  let window (tr : Cdtrace.t) (ev : (int * string * string) array) =
    let lo = if m > 0 then (let s, _, _ = ev.(m - 1) in s + 1) else 0 in
    let hi =
      match diverging_event with
      | Some d when d < Array.length ev -> (let s, _, _ = ev.(d) in s + 1)
      | Some _ | None -> Cdtrace.length tr
    in
    (lo, max lo hi)
  in
  let wa = window ta ea and wb = window tb eb in
  let pa = project ta ~lo:(fst wa) ~hi:(snd wa) in
  let pb = project tb ~lo:(fst wb) ~hi:(snd wb) in
  let cut, probes = common_prefix pa pb in
  ignore (Atomic.fetch_and_add stat_probes probes);
  let at_a = if cut < Array.length pa then Some pa.(cut) else None in
  let at_b = if cut < Array.length pb then Some pb.(cut) else None in
  let at_a, at_b, diff =
    match (at_a, at_b) with
    | Some a, Some b ->
      let where =
        match (a.pr_line, b.pr_line) with
        | Some la, Some lb when la = lb -> Printf.sprintf "at line %d, " la
        | _ -> ""
      in
      ( at_a, at_b,
        Printf.sprintf "%s%s writes %s (%s); %s writes %s (%s)" where
          ta.Cdtrace.impl a.pr_value (probe_place a) tb.Cdtrace.impl b.pr_value
          (probe_place b) )
    | Some a, None ->
      ( at_a, None,
        Printf.sprintf "only %s still writes: %s (%s); %s performs no further write"
          ta.Cdtrace.impl a.pr_value (probe_place a) tb.Cdtrace.impl )
    | None, Some b ->
      ( None, at_b,
        Printf.sprintf "only %s still writes: %s (%s); %s performs no further write"
          tb.Cdtrace.impl b.pr_value (probe_place b) ta.Cdtrace.impl )
    | None, None -> (
      (* projections agree: explain by the event skeleton, then status *)
      match diverging_event with
      | Some d ->
        let side ev tr =
          if d < Array.length ev then begin
            let s, fn, text = ev.(d) in
            (probe_at tr s ~value:(Printf.sprintf "%S" text),
             Printf.sprintf "[%s] %S" fn text)
          end
          else (None, Printf.sprintf "no further output from %s" tr.Cdtrace.impl)
        in
        let a, sa = side ea ta and b, sb = side eb tb in
        (a, b,
         Printf.sprintf "observable event #%d differs: %s vs %s" d sa sb)
      | None ->
        let sa = Cdvm.Trap.status_to_string ta.Cdtrace.status
        and sb = Cdvm.Trap.status_to_string tb.Cdtrace.status in
        ( None, None,
          if sa <> sb then
            Printf.sprintf "termination differs: %s (%s) vs %s (%s)"
              ta.Cdtrace.impl sa tb.Cdtrace.impl sb
          else
            Printf.sprintf
              "traces agree on writes, events and status%s; raw outputs %s"
              (if ta.Cdtrace.truncated || tb.Cdtrace.truncated then
                 " up to the recording cap"
               else "")
              (if ta.Cdtrace.stdout = tb.Cdtrace.stdout then "agree too"
               else "differ only after normalization") ))
  in
  let side (tr : Cdtrace.t) w at =
    {
      ds_impl = tr.Cdtrace.impl;
      ds_steps = Cdtrace.length tr;
      ds_truncated = tr.Cdtrace.truncated;
      ds_window = w;
      ds_at = at;
    }
  in
  {
    deep_a = side ta wa at_a;
    deep_b = side tb wb at_b;
    anchor_event = m - 1;
    diverging_event;
    probes;
    diff;
  }

(* Record the two traces (through the shared pool; via the session's
   image cache and uncached traced-run path when one is given) and
   localize between them. *)
let record_pair ?session ?(fuel = 200_000) ?limit ?snapshot_every
    ~(impl_a : string * Cdcompiler.Ir.unit_)
    ~(impl_b : string * Cdcompiler.Ir.unit_) ~(input : string) () :
    Cdtrace.t * Cdtrace.t =
  let record (name, u) =
    match session with
    | Some s ->
      let l = Engine.Session.link s u in
      let observer, finish =
        Cdtrace.recorder ?limit ?snapshot_every (Engine.Session.image l)
          ~impl:name ~input ~fuel
      in
      finish (Engine.Session.run_traced s l ~observer ~input ~fuel)
    | None ->
      fst
        (Cdtrace.record ?limit ?snapshot_every ~fuel (Cdvm.Image.link u)
           ~impl:name ~input)
  in
  match Cdutil.Pool.map record [ impl_a; impl_b ] with
  | [ ta; tb ] -> (ta, tb)
  | _ -> assert false

let deep ?session ?fuel ?limit ?snapshot_every ~impl_a ~impl_b ~input () : deep =
  let ta, tb =
    record_pair ?session ?fuel ?limit ?snapshot_every ~impl_a ~impl_b ~input ()
  in
  deep_of_traces ta tb

(* Deep analogue of {!of_divergence}: pick the divergent pair and
   localize it at instruction granularity, replaying at the verdict
   fuel. *)
let deep_of_divergence ?fuel ?limit (oracle : Oracle.t)
    (binaries : (string * Cdcompiler.Ir.unit_) list)
    (obs : (string * Oracle.observation) list) ~(input : string) :
    deep option =
  match divergent_pair oracle obs with
  | None -> None
  | Some (first_name, other_name) -> (
    let fuel =
      match fuel with Some f -> f | None -> Oracle.verdict_fuel oracle obs
    in
    match
      ( List.find_opt (fun (n, _) -> n = first_name) binaries,
        List.find_opt (fun (n, _) -> n = other_name) binaries )
    with
    | Some a, Some b ->
      Some
        (deep ~session:(Oracle.session oracle) ~fuel ?limit ~impl_a:a
           ~impl_b:b ~input ())
    | _ -> None)

let deep_to_string (d : deep) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "deep localization: %s vs %s\n" d.deep_a.ds_impl
       d.deep_b.ds_impl);
  Buffer.add_string buf
    (Printf.sprintf "  aligned on %d shared observable event%s%s\n"
       (d.anchor_event + 1)
       (if d.anchor_event = 0 then "" else "s")
       (match d.diverging_event with
       | Some e -> Printf.sprintf "; event #%d differs" e
       | None -> "; event skeletons agree"));
  let side (s : deep_side) =
    Buffer.add_string buf
      (Printf.sprintf "  %-12s %d steps%s, searched window [%d, %d)%s\n"
         s.ds_impl s.ds_steps
         (if s.ds_truncated then " (truncated)" else "")
         (fst s.ds_window) (snd s.ds_window)
         (match s.ds_at with
         | Some p -> "\n               first diverging instruction: " ^ probe_place p
         | None -> ""))
  in
  side d.deep_a;
  side d.deep_b;
  Buffer.add_string buf
    (Printf.sprintf "  diff (%d bisection probe%s): %s\n" d.probes
       (if d.probes = 1 then "" else "s")
       d.diff);
  Buffer.contents buf

let to_string (l : localization) : string =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "first divergent observation: event #%d (%s vs %s)\n"
       l.event_index l.impl_a l.impl_b);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  shared   [%s] %S\n" e.ev_fn e.ev_text))
    l.before;
  (match (l.at_a, l.at_b) with
  | Some a, Some b when a.ev_fn = b.ev_fn ->
    Buffer.add_string buf
      (Printf.sprintf "  diverges in function '%s':\n" a.ev_fn);
    Buffer.add_string buf (Printf.sprintf "    %-12s %S\n" l.impl_a a.ev_text);
    Buffer.add_string buf (Printf.sprintf "    %-12s %S\n" l.impl_b b.ev_text)
  | Some a, Some b ->
    Buffer.add_string buf
      (Printf.sprintf "  control flow diverges: '%s' reaches %s, '%s' reaches %s\n"
         l.impl_a a.ev_fn l.impl_b b.ev_fn)
  | Some a, None ->
    Buffer.add_string buf
      (Printf.sprintf "  only %s observes [%s] %S; %s produced no further output\n"
         l.impl_a a.ev_fn a.ev_text l.impl_b)
  | None, Some b ->
    Buffer.add_string buf
      (Printf.sprintf "  only %s observes [%s] %S; %s produced no further output\n"
         l.impl_b b.ev_fn b.ev_text l.impl_a)
  | None, None -> Buffer.add_string buf "  traces identical\n");
  Buffer.contents buf
