(* Fault-localization prototype (paper Section 5, "Fault localization and
   bug report").

   The paper observes that CompDiff bugs need not crash, so stack traces
   are unavailable, and proposes comparing execution traces across
   binaries — hard in general because optimizations reshape control flow.
   This prototype uses the one trace level optimizations must preserve:
   the sequence of *observable events* (executed print statements), each
   tagged with its enclosing function. The first event where two binaries
   disagree localizes the divergence to a function and an event index,
   which is exactly the paper's bug-report granularity plus a starting
   point for diagnosis. *)

type event = {
  ev_fn : string;      (* enclosing function of the print *)
  ev_text : string;    (* rendered output of that statement *)
}

type localization = {
  impl_a : string;
  impl_b : string;
  event_index : int;                 (* first differing observable event *)
  before : event list;               (* shared prefix (up to 3 events) *)
  at_a : event option;               (* the differing event in each binary *)
  at_b : event option;
}

(* Run one pre-linked binary collecting its observable-event trace. *)
let trace_image ?(fuel = 200_000) (img : Cdvm.Image.t) ~(input : string) :
    event list * Cdvm.Trap.status =
  let events = ref [] in
  let on_print ~fn text = events := { ev_fn = fn; ev_text = text } :: !events in
  let r =
    Cdvm.Exec.run_linked
      ~config:
        {
          Cdvm.Exec.default_config with
          Cdvm.Exec.input;
          fuel;
          on_print = Some on_print;
        }
      img
  in
  (List.rev !events, r.Cdvm.Exec.status)

(* Run one binary collecting its observable-event trace.  With a session
   the (re-)link is served by the image cache; the traced execution
   itself must NOT go through the observation store ([on_print] makes it
   more than a function of (image, input, fuel)), so it always runs. *)
let trace ?session ?fuel (u : Cdcompiler.Ir.unit_) ~(input : string) :
    event list * Cdvm.Trap.status =
  let img =
    match session with
    | Some s -> Engine.Session.image (Engine.Session.link s u)
    | None -> Cdvm.Image.link u
  in
  trace_image ?fuel img ~input

let rec first_diff i (a : event list) (b : event list) =
  match (a, b) with
  | [], [] -> None
  | x :: xs, y :: ys when x = y -> first_diff (i + 1) xs ys
  | x :: _, y :: _ -> Some (i, Some x, Some y)
  | x :: _, [] -> Some (i, Some x, None)
  | [], y :: _ -> Some (i, None, Some y)

let take n l = List.filteri (fun i _ -> i < n) l

(* Localize a divergence between two named implementations. Returns
   [None] when their observable traces are identical (the divergence is
   then in the termination status only). *)
let between ?session ?fuel ~(impl_a : string * Cdcompiler.Ir.unit_)
    ~(impl_b : string * Cdcompiler.Ir.unit_) ~(input : string) () :
    localization option =
  let name_a, ua = impl_a and name_b, ub = impl_b in
  let ta, _ = trace ?session ?fuel ua ~input in
  let tb, _ = trace ?session ?fuel ub ~input in
  match first_diff 0 ta tb with
  | None -> None
  | Some (i, ea, eb) ->
    let prefix = take i ta in
    let before =
      let n = List.length prefix in
      List.filteri (fun j _ -> j >= n - 3) prefix
    in
    Some { impl_a = name_a; impl_b = name_b; event_index = i; before; at_a = ea; at_b = eb }

(* The first pair of implementations whose observations disagree: the
   leftmost binary plus the leftmost one differing from it.  The pair is
   a function of the behaviour partition, so any reduction step that
   preserves the partition signature preserves it too. *)
let divergent_pair (oracle : Oracle.t)
    (obs : (string * Oracle.observation) list) : (string * string) option =
  match obs with
  | [] -> None
  | (first_name, first_obs) :: rest ->
    let c0 = Oracle.checksum oracle first_obs in
    Option.map
      (fun (other_name, _) -> (first_name, other_name))
      (List.find_opt (fun (_, o) -> Oracle.checksum oracle o <> c0) rest)

(* Pick two implementations with differing observations from an oracle
   divergence and localize between them.  Traces replay at the fuel the
   verdict was actually obtained at ({!Oracle.verdict_fuel}) unless the
   caller overrides it: a divergence found after escalation would
   otherwise localize as a spurious hang. *)
let of_divergence ?fuel (oracle : Oracle.t)
    (binaries : (string * Cdcompiler.Ir.unit_) list)
    (obs : (string * Oracle.observation) list) ~(input : string) :
    localization option =
  match divergent_pair oracle obs with
  | None -> None
  | Some (first_name, other_name) -> (
    let fuel =
      match fuel with Some f -> f | None -> Oracle.verdict_fuel oracle obs
    in
    match
      ( List.find_opt (fun (n, _) -> n = first_name) binaries,
        List.find_opt (fun (n, _) -> n = other_name) binaries )
    with
    | Some a, Some b ->
      between ~session:(Oracle.session oracle) ~fuel ~impl_a:a ~impl_b:b
        ~input ()
    | _ -> None)

let to_string (l : localization) : string =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "first divergent observation: event #%d (%s vs %s)\n"
       l.event_index l.impl_a l.impl_b);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  shared   [%s] %S\n" e.ev_fn e.ev_text))
    l.before;
  (match (l.at_a, l.at_b) with
  | Some a, Some b when a.ev_fn = b.ev_fn ->
    Buffer.add_string buf
      (Printf.sprintf "  diverges in function '%s':\n" a.ev_fn);
    Buffer.add_string buf (Printf.sprintf "    %-12s %S\n" l.impl_a a.ev_text);
    Buffer.add_string buf (Printf.sprintf "    %-12s %S\n" l.impl_b b.ev_text)
  | Some a, Some b ->
    Buffer.add_string buf
      (Printf.sprintf "  control flow diverges: '%s' reaches %s, '%s' reaches %s\n"
         l.impl_a a.ev_fn l.impl_b b.ev_fn)
  | Some a, None ->
    Buffer.add_string buf
      (Printf.sprintf "  only %s observes [%s] %S; %s produced no further output\n"
         l.impl_a a.ev_fn a.ev_text l.impl_b)
  | None, Some b ->
    Buffer.add_string buf
      (Printf.sprintf "  only %s observes [%s] %S; %s produced no further output\n"
         l.impl_b b.ev_fn b.ev_text l.impl_a)
  | None, None -> Buffer.add_string buf "  traces identical\n");
  Buffer.contents buf
