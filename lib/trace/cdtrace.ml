(* Recorded step-level executions: the trace store (DESIGN.md §15).

   A trace captures one [Steps]-observed run of a linked image as an
   append-only byte stream: per instruction a zigzag-varint pc delta
   followed by the instruction's *effects* -- register writes, absolute
   memory writes, call/return boundaries and print events -- as tagged
   items.  The stream is pure replay data: applying the items of steps
   [0..k-1] in order reconstructs the registers of every live frame and
   the written memory cells exactly as they stood when instruction [k]
   was about to execute.

   Seeking is O(sqrt n)-ish rather than O(n): every [snapshot_every]
   steps the recorder deep-copies its replay mirror (frame stack +
   written-cell table) together with the byte offset of the upcoming
   step record; a cursor seeks by restoring the nearest snapshot at or
   below the target and decoding forward.

   On disk a trace is "CDTR1" + u32 payload length + u32 murmur3
   checksum + marshalled payload, so a truncated or bit-flipped file is
   detected before the unmarshaller ever sees it.  Files are
   content-addressed by payload hash, alongside the engine's Diskcache
   entries in spirit: same trace, same name. *)

open Cdcompiler
module Value = Cdvm.Value
module Trap = Cdvm.Trap

exception Corrupt of string

(* --- the recorder's byte sink --- *)

(* A hand-rolled growable byte array instead of [Buffer]: the recorder
   appends a handful of bytes per executed instruction, so the per-byte
   cost must be an inlined bounds check and an unsafe store, not a
   cross-module call.  Only the recorder writes through it; decoding
   reads plain strings. *)
type obuf = { mutable ob : Bytes.t; mutable olen : int }

let ob_create n = { ob = Bytes.create (max 16 n); olen = 0 }

let ob_grow (b : obuf) : unit =
  let nb = Bytes.create (2 * Bytes.length b.ob) in
  Bytes.blit b.ob 0 nb 0 b.olen;
  b.ob <- nb

let[@inline] ob_char (b : obuf) (c : char) : unit =
  if b.olen >= Bytes.length b.ob then ob_grow b;
  Bytes.unsafe_set b.ob b.olen c;
  b.olen <- b.olen + 1

let ob_contents (b : obuf) : string = Bytes.sub_string b.ob 0 b.olen

(* room for [k] more bytes; doubling until it fits keeps this amortized *)
let rec ob_reserve_slow (b : obuf) (k : int) : unit =
  ob_grow b;
  if b.olen + k > Bytes.length b.ob then ob_reserve_slow b k

let[@inline] ob_reserve (b : obuf) (k : int) : unit =
  if b.olen + k > Bytes.length b.ob then ob_reserve_slow b k

(* --- varint codecs --- *)

(* unsigned LEB128 over native non-negative ints *)
let put_uv_slow buf n =
  if n < 0 then invalid_arg "Cdtrace.put_uv: negative";
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      ob_char buf (Char.unsafe_chr b);
      continue := false
    end
    else ob_char buf (Char.unsafe_chr (b lor 0x80))
  done

(* register numbers, pc deltas and small values are almost always one
   7-bit group: keep that case on an inlined straight line *)
let[@inline] put_uv buf n =
  if n >= 0 && n < 0x80 then ob_char buf (Char.unsafe_chr n)
  else put_uv_slow buf n

(* zigzag for signed native ints (pc deltas, wild addresses) *)
let[@inline] put_sv buf n =
  put_uv buf ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

let put_uv64 buf (n : int64) =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = Int64.to_int (Int64.logand !n 0x7fL) in
    n := Int64.shift_right_logical !n 7;
    if !n = 0L then begin
      ob_char buf (Char.unsafe_chr b);
      continue := false
    end
    else ob_char buf (Char.unsafe_chr (b lor 0x80))
  done

(* The boxed-int64 loop above allocates per 7-bit group; values that
   fit comfortably in a native int (|v| < 2^61, i.e. everything the VM
   produces short of deliberate 64-bit-boundary arithmetic) take the
   unboxed native path, which emits byte-identical LEB128: for those v
   the native zigzag equals the 64-bit zigzag. *)
let put_sv64 buf (v : int64) =
  if v >= -0x2000000000000000L && v < 0x2000000000000000L then
    put_sv buf (Int64.to_int v)
  else
    put_uv64 buf (Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63))

let get_byte (s : string) (pos : int ref) : int =
  if !pos >= String.length s then raise (Corrupt "truncated trace stream");
  let b = Char.code s.[!pos] in
  incr pos;
  b

let get_uv s pos : int =
  let shift = ref 0 and acc = ref 0 and continue = ref true in
  while !continue do
    let b = get_byte s pos in
    acc := !acc lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then continue := false
    else if !shift > 70 then raise (Corrupt "overlong varint")
  done;
  !acc

let get_sv s pos : int =
  let u = get_uv s pos in
  (u lsr 1) lxor (- (u land 1))

let get_uv64 s pos : int64 =
  let shift = ref 0 and acc = ref 0L and continue = ref true in
  while !continue do
    let b = get_byte s pos in
    acc := Int64.logor !acc (Int64.shift_left (Int64.of_int (b land 0x7f)) !shift);
    shift := !shift + 7;
    if b < 0x80 then continue := false
    else if !shift > 70 then raise (Corrupt "overlong varint")
  done;
  !acc

let get_sv64 s pos : int64 =
  let u = get_uv64 s pos in
  Int64.logxor
    (Int64.shift_right_logical u 1)
    (Int64.neg (Int64.logand u 1L))

(* --- value codec --- *)

let put_value buf (v : Value.t) =
  match v with
  | Value.Vint x ->
    ob_char buf '\000';
    put_sv64 buf x
  | Value.Vfloat f ->
    ob_char buf '\001';
    put_uv64 buf (Int64.bits_of_float f)
  | Value.Vptr p ->
    ob_char buf '\002';
    put_sv buf p.Value.obj;
    put_sv buf p.Value.off

let get_value s pos : Value.t =
  match get_byte s pos with
  | 0 -> Value.Vint (get_sv64 s pos)
  | 1 -> Value.Vfloat (Int64.float_of_bits (get_uv64 s pos))
  | 2 ->
    let obj = get_sv s pos in
    let off = get_sv s pos in
    Value.Vptr { Value.obj; off }
  | n -> raise (Corrupt (Printf.sprintf "bad value tag %d" n))

(* --- step items --- *)

(* One recorded effect.  A step's items are everything that happened
   while its instruction executed: because the recorder appends to the
   most recent step record, a call's argument writes ride the caller's
   call step and the return-value write rides the callee's ret step --
   replay applies them in arrival order against the frame stack, which
   is exactly where the VM put them. *)
type item =
  | Wreg of int * Value.t   (* register write in the current top frame *)
  | Wmem of int * Value.t   (* absolute-address store, builtins included *)
  | Call of int             (* frame pushed for function index fi *)
  | Ret                     (* frame popped *)
  | Print of int            (* index into the events table *)

let tag_end = '\000'

let put_item buf (it : item) =
  match it with
  | Wreg (r, v) ->
    ob_char buf '\001';
    put_uv buf r;
    put_value buf v
  | Wmem (a, v) ->
    ob_char buf '\002';
    put_sv buf a;
    put_value buf v
  | Call fi ->
    ob_char buf '\003';
    put_uv buf fi
  | Ret -> ob_char buf '\004'
  | Print ev ->
    ob_char buf '\005';
    put_uv buf ev

(* [None] is the group terminator *)
let get_item s pos : item option =
  match get_byte s pos with
  | 0 -> None
  | 1 ->
    let r = get_uv s pos in
    let v = get_value s pos in
    Some (Wreg (r, v))
  | 2 ->
    let a = get_sv s pos in
    let v = get_value s pos in
    Some (Wmem (a, v))
  | 3 -> Some (Call (get_uv s pos))
  | 4 -> Some Ret
  | 5 -> Some (Print (get_uv s pos))
  | n -> raise (Corrupt (Printf.sprintf "bad item tag %d" n))

(* --- the trace --- *)

type snapshot = {
  sn_step : int;       (* replay position the snapshot captures *)
  sn_off : int;        (* byte offset of step [sn_step]'s record *)
  sn_last_pc : int;    (* delta-decoder state at that offset *)
  sn_frames : (int * (int, Value.t) Hashtbl.t) list;  (* top first *)
  sn_mem : (int, Value.t) Hashtbl.t;
}

type func_info = {
  fn_name : string;
  fn_lines : int array;  (* pc -> source line; empty when stripped *)
}

type t = {
  impl : string;                           (* implementation / profile *)
  input : string;
  fuel : int;
  status : Trap.status;
  stdout : string;
  fuel_used : int;
  nsteps : int;                            (* steps recorded *)
  total_steps : int;                       (* steps executed *)
  truncated : bool;                        (* total_steps > nsteps *)
  funcs : func_info array;                 (* indexed by fi *)
  events : (int * string * string) array;  (* (step, fn, text) *)
  code : string;                           (* the encoded step stream *)
  snaps : snapshot array;                  (* ascending sn_step *)
}

let length (tr : t) = tr.nsteps

let func_name (tr : t) (fi : int) : string =
  if fi >= 0 && fi < Array.length tr.funcs then tr.funcs.(fi).fn_name else "?"

let line_of (tr : t) ~(fi : int) ~(pc : int) : int option =
  if fi < 0 || fi >= Array.length tr.funcs then None
  else begin
    let lines = tr.funcs.(fi).fn_lines in
    if pc >= 0 && pc < Array.length lines then Some lines.(pc) else None
  end

(* --- recorder --- *)

let default_limit = 1_000_000

(* sqrt of [default_limit], the O(sqrt n) balance point: seeks replay
   at most one stride, the recorder copies its mirror once per stride *)
let default_snapshot_every = 1024

(* Live frame mirror: a flat register array instead of the hashtable
   the snapshots carry.  Register writes are the recorder's hottest
   callback (most instructions perform one), so the per-write cost must
   be an array store; the hashtable form is only materialized when a
   snapshot is actually taken, every [snapshot_every] steps. *)
type rframe = {
  rf_fi : int;
  rf_regs : Value.t array;
  rf_written : bool array;
}

type recorder_state = {
  buf : obuf;
  mutable rsteps : int;                    (* recorded steps *)
  mutable tsteps : int;                    (* executed steps *)
  mutable rlast_pc : int;
  mutable snap_in : int;                   (* steps until next snapshot *)
  mutable rframes : rframe list;
  mutable rmem : (int, Value.t) Hashtbl.t;
  mutable rsnaps : snapshot list;          (* newest first *)
  mutable revents : (int * string * string) list;
  mutable nevents : int;
}

let recorder ?(limit = default_limit)
    ?(snapshot_every = default_snapshot_every) (img : Cdvm.Image.t)
    ~(impl : string) ~(input : string) ~(fuel : int) :
    Cdvm.Observer.t * (Cdvm.Exec.result -> t) =
  if limit < 1 then invalid_arg "Cdtrace.recorder: limit < 1";
  if snapshot_every < 1 then invalid_arg "Cdtrace.recorder: snapshot_every < 1";
  let r =
    {
      buf = ob_create 4096;
      rsteps = 0;
      tsteps = 0;
      rlast_pc = 0;
      snap_in = 0;
      rframes = [];
      rmem = Hashtbl.create 64;
      rsnaps = [];
      revents = [];
      nevents = 0;
    }
  in
  (* recording stops at [limit] steps; the run continues untouched *)
  let live = ref true in
  let frame_table (f : rframe) : (int, Value.t) Hashtbl.t =
    let h = Hashtbl.create 16 in
    Array.iteri
      (fun i w -> if w then Hashtbl.replace h i f.rf_regs.(i))
      f.rf_written;
    h
  in
  let snapshot () =
    {
      sn_step = r.rsteps;
      sn_off = r.buf.olen;
      sn_last_pc = r.rlast_pc;
      sn_frames = List.map (fun f -> (f.rf_fi, frame_table f)) r.rframes;
      sn_mem = Hashtbl.copy r.rmem;
    }
  in
  let on_step ~fi:_ ~pc ~depth:_ =
    r.tsteps <- r.tsteps + 1;
    if !live then begin
      if r.rsteps >= limit then begin
        (* close the last recorded group and go dead *)
        ob_char r.buf tag_end;
        live := false
      end
      else begin
        if r.snap_in = 0 then begin
          (* the group terminator belongs to the snapshot's offset *)
          ob_char r.buf tag_end;
          r.rsnaps <- snapshot () :: r.rsnaps;
          r.snap_in <- snapshot_every;
          put_sv r.buf (pc - r.rlast_pc)
        end
        else begin
          (* hot case: terminator + a one-byte pc delta, bounds-checked
             once (the same bytes [ob_char] + [put_sv] would emit) *)
          let d = pc - r.rlast_pc in
          let z = (d lsl 1) lxor (d asr (Sys.int_size - 1)) in
          if z >= 0 && z < 0x80 then begin
            let b = r.buf in
            ob_reserve b 2;
            Bytes.unsafe_set b.ob b.olen tag_end;
            Bytes.unsafe_set b.ob (b.olen + 1) (Char.unsafe_chr z);
            b.olen <- b.olen + 2
          end
          else begin
            ob_char r.buf tag_end;
            put_sv r.buf d
          end
        end;
        r.snap_in <- r.snap_in - 1;
        r.rlast_pc <- pc;
        r.rsteps <- r.rsteps + 1
      end
    end
  in
  (* the write callbacks inline [put_item]'s encoding: no [item] block
     is allocated on the recording path *)
  let on_reg_write ~reg v =
    if !live then begin
      (match v with
      | Value.Vint x
        when reg < 0x80 && x >= -0x2000000000000000L
             && x < 0x2000000000000000L ->
        (* hot case: small register number, native-range int value --
           one bounds check, then the whole record (tag, reg, value
           tag, zigzag LEB128) as unsafe stores; same bytes as the
           slow path *)
        let n = Int64.to_int x in
        let z = ref ((n lsl 1) lxor (n asr (Sys.int_size - 1))) in
        let b = r.buf in
        ob_reserve b 13;
        let o = ref b.olen in
        Bytes.unsafe_set b.ob !o '\001';
        Bytes.unsafe_set b.ob (!o + 1) (Char.unsafe_chr reg);
        Bytes.unsafe_set b.ob (!o + 2) '\000';
        o := !o + 3;
        while !z >= 0x80 do
          Bytes.unsafe_set b.ob !o (Char.unsafe_chr (!z land 0x7f lor 0x80));
          incr o;
          z := !z lsr 7
        done;
        Bytes.unsafe_set b.ob !o (Char.unsafe_chr !z);
        b.olen <- !o + 1
      | _ ->
        ob_char r.buf '\001';
        put_uv r.buf reg;
        put_value r.buf v);
      match r.rframes with
      | f :: _ when reg < Array.length f.rf_regs ->
        f.rf_regs.(reg) <- v;
        f.rf_written.(reg) <- true
      | _ -> ()
    end
  in
  let on_mem_write ~addr v =
    if !live then begin
      ob_char r.buf '\002';
      put_sv r.buf addr;
      put_value r.buf v;
      Hashtbl.replace r.rmem addr v
    end
  in
  let on_call ~fi =
    if !live then begin
      ob_char r.buf '\003';
      put_uv r.buf fi;
      let nregs = max 1 img.Cdvm.Image.funcs.(fi).Cdvm.Image.l_nregs in
      r.rframes <-
        {
          rf_fi = fi;
          rf_regs = Array.make nregs Value.zero;
          rf_written = Array.make nregs false;
        }
        :: r.rframes
    end
  in
  let on_ret () =
    if !live then begin
      ob_char r.buf '\004';
      match r.rframes with _ :: rest -> r.rframes <- rest | [] -> ()
    end
  in
  let on_print_ev ~fn text =
    if !live then begin
      ob_char r.buf '\005';
      put_uv r.buf r.nevents;
      r.revents <- (r.rsteps - 1, fn, text) :: r.revents;
      r.nevents <- r.nevents + 1
    end
  in
  let observer =
    Cdvm.Observer.steps
      { Cdvm.Observer.on_step; on_reg_write; on_mem_write; on_call; on_ret;
        on_print_ev }
  in
  (* pc -> line via the source unit: compiled units re-enter the image
     with rebuilt line tables (Pipeline.restore_lines), and the image's
     function array is positionally parallel to the unit's list *)
  let src = Array.of_list img.Cdvm.Image.unit_.Ir.funcs in
  let funcs =
    Array.init (Array.length img.Cdvm.Image.funcs) (fun i ->
        let lf = img.Cdvm.Image.funcs.(i) in
        let fn_lines =
          if i < Array.length src then (snd src.(i)).Ir.code_lines else [||]
        in
        { fn_name = lf.Cdvm.Image.l_name; fn_lines })
  in
  let finish (res : Cdvm.Exec.result) : t =
    if !live then ob_char r.buf tag_end;
    live := false;
    {
      impl;
      input;
      fuel;
      status = res.Cdvm.Exec.status;
      stdout = res.Cdvm.Exec.stdout;
      fuel_used = res.Cdvm.Exec.fuel_used;
      nsteps = r.rsteps;
      total_steps = r.tsteps;
      truncated = r.tsteps > r.rsteps;
      funcs;
      events = Array.of_list (List.rev r.revents);
      code = ob_contents r.buf;
      snaps = Array.of_list (List.rev r.rsnaps);
    }
  in
  (observer, finish)

(* record + run in one call, for callers without an engine session *)
let record ?limit ?snapshot_every ?(fuel = 200_000) (img : Cdvm.Image.t)
    ~(impl : string) ~(input : string) : t * Cdvm.Exec.result =
  let observer, finish = recorder ?limit ?snapshot_every img ~impl ~input ~fuel in
  let res =
    Cdvm.Exec.run_linked
      ~config:{ Cdvm.Exec.default_config with Cdvm.Exec.input; fuel; observer }
      img
  in
  (finish res, res)

(* --- replay cursor --- *)

type cursor = {
  trace : t;
  mutable pos : int;                       (* steps applied *)
  mutable off : int;                       (* offset of step [pos]'s record *)
  mutable last_pc : int;
  mutable cframes : (int * (int, Value.t) Hashtbl.t) list;
  mutable cmem : (int, Value.t) Hashtbl.t;
}

let apply_item c (it : item) =
  match it with
  | Wreg (r, v) -> (
    match c.cframes with (_, h) :: _ -> Hashtbl.replace h r v | [] -> ())
  | Wmem (a, v) -> Hashtbl.replace c.cmem a v
  | Call fi -> c.cframes <- (fi, Hashtbl.create 16) :: c.cframes
  | Ret -> (
    match c.cframes with _ :: rest -> c.cframes <- rest | [] -> ())
  | Print _ -> ()

let apply_group c (pos : int ref) =
  let rec go () =
    match get_item c.trace.code pos with
    | Some it ->
      apply_item c it;
      go ()
    | None -> ()
  in
  go ()

(* back to position 0: empty state plus the prologue (the entry call
   and its argument writes, recorded before step 0) *)
let rewind (c : cursor) : unit =
  c.cframes <- [];
  c.cmem <- Hashtbl.create 64;
  let pos = ref 0 in
  apply_group c pos;
  c.pos <- 0;
  c.off <- !pos;
  c.last_pc <- 0

let cursor (tr : t) : cursor =
  let c =
    { trace = tr; pos = 0; off = 0; last_pc = 0; cframes = [];
      cmem = Hashtbl.create 64 }
  in
  rewind c;
  c

let pos (c : cursor) = c.pos

(* apply one step's record; requires [pos < nsteps] *)
let step_forward (c : cursor) : unit =
  if c.pos >= c.trace.nsteps then invalid_arg "Cdtrace.step_forward: at end";
  let p = ref c.off in
  let dpc = get_sv c.trace.code p in
  c.last_pc <- c.last_pc + dpc;
  apply_group c p;
  c.off <- !p;
  c.pos <- c.pos + 1

let restore (c : cursor) (sn : snapshot) : unit =
  c.pos <- sn.sn_step;
  c.off <- sn.sn_off;
  c.last_pc <- sn.sn_last_pc;
  c.cframes <- List.map (fun (fi, h) -> (fi, Hashtbl.copy h)) sn.sn_frames;
  c.cmem <- Hashtbl.copy sn.sn_mem

(* seek by restoring the nearest snapshot at or below [k] -- unless the
   cursor already sits in (snapshot, k], in which case walking forward
   from where it is is strictly cheaper *)
let seek (c : cursor) (k : int) : unit =
  let k = max 0 (min k c.trace.nsteps) in
  let best = ref None in
  Array.iter
    (fun sn -> if sn.sn_step <= k then best := Some sn)
    c.trace.snaps;
  (match !best with
  | Some sn ->
    if not (c.pos >= sn.sn_step && c.pos <= k) then restore c sn
  | None -> if c.pos > k then rewind c);
  while c.pos < k do
    step_forward c
  done

(* linear replay from the start, ignoring snapshots: the test oracle
   [seek] is checked against *)
let seek_slow (c : cursor) (k : int) : unit =
  let k = max 0 (min k c.trace.nsteps) in
  rewind c;
  while c.pos < k do
    step_forward c
  done

(* (fi, pc, depth) of the instruction about to execute, [None] at end *)
let peek (c : cursor) : (int * int * int) option =
  if c.pos >= c.trace.nsteps then None
  else begin
    let p = ref c.off in
    let dpc = get_sv c.trace.code p in
    let pc = c.last_pc + dpc in
    match c.cframes with
    | (fi, _) :: _ -> Some (fi, pc, List.length c.cframes)
    | [] -> None
  end

let regs (c : cursor) : (int * Value.t) list =
  match c.cframes with
  | (_, h) :: _ ->
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [])
  | [] -> []

let mem_cells (c : cursor) : (int * Value.t) list =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.cmem [])

(* call stack, outermost first *)
let frames (c : cursor) : int list = List.rev_map fst c.cframes

(* canonical rendering of the full replay state; two cursors over equal
   traces agree on it iff they reconstruct identical states *)
let state_to_string (c : cursor) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "pos=%d" c.pos);
  (match peek c with
  | Some (fi, pc, depth) ->
    Buffer.add_string buf
      (Printf.sprintf " next=%s@%d depth=%d" (func_name c.trace fi) pc depth)
  | None -> Buffer.add_string buf " next=<end>");
  Buffer.add_string buf "\nstack:";
  List.iter
    (fun fi -> Buffer.add_string buf (Printf.sprintf " %s" (func_name c.trace fi)))
    (frames c);
  Buffer.add_string buf "\nregs:";
  List.iter
    (fun (r, v) ->
      Buffer.add_string buf (Printf.sprintf " r%d=%s" r (Value.to_string v)))
    (regs c);
  Buffer.add_string buf "\nmem:";
  List.iter
    (fun (a, v) ->
      Buffer.add_string buf (Printf.sprintf " [%d]=%s" a (Value.to_string v)))
    (mem_cells c);
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- sequential decoding (the aligner's path) --- *)

type step_view = {
  sv_ix : int;
  sv_fi : int;
  sv_pc : int;
  sv_depth : int;
  sv_items : item list;
}

(* visit every recorded step in order without materializing state; the
   frame stack is tracked with function indices only *)
let iter (tr : t) (f : step_view -> unit) : unit =
  let s = tr.code in
  let p = ref 0 in
  let stack = ref [] in
  let group () =
    let rec go acc =
      match get_item s p with
      | Some it ->
        (match it with
        | Call fi -> stack := fi :: !stack
        | Ret -> (match !stack with _ :: r -> stack := r | [] -> ())
        | Wreg _ | Wmem _ | Print _ -> ());
        go (it :: acc)
      | None -> List.rev acc
    in
    go []
  in
  ignore (group ());  (* prologue *)
  let last_pc = ref 0 in
  for ix = 0 to tr.nsteps - 1 do
    let dpc = get_sv s p in
    let pc = !last_pc + dpc in
    last_pc := pc;
    let fi, depth =
      match !stack with fi :: _ -> (fi, List.length !stack) | [] -> (-1, 0)
    in
    let items = group () in
    f { sv_ix = ix; sv_fi = fi; sv_pc = pc; sv_depth = depth; sv_items = items }
  done

(* --- disk format --- *)

let magic = "CDTR1"

let save_to (tr : t) ~(file : string) : unit =
  let payload = Marshal.to_string tr [] in
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      let put32 n =
        for i = 0 to 3 do
          output_char oc (Char.chr ((n lsr (8 * i)) land 0xff))
        done
      in
      put32 (String.length payload);
      put32 (Cdutil.Murmur3.hash payload);
      output_string oc payload)

(* content-addressed save: same trace bytes, same filename *)
let save (tr : t) ~(dir : string) : string =
  let payload = Marshal.to_string tr [] in
  let sanitized =
    String.map
      (fun ch ->
        match ch with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> ch
        | _ -> '-')
      tr.impl
  in
  let name =
    Printf.sprintf "trace-%s-%08lx.ctr" sanitized
      (Cdutil.Murmur3.hash32 payload)
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let file = Filename.concat dir name in
  save_to tr ~file;
  file

let load (file : string) : (t, string) result =
  match open_in_bin file with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          let total = in_channel_length ic in
          if total < String.length magic + 8 then Error "trace file too short"
          else begin
            let m = really_input_string ic (String.length magic) in
            if m <> magic then Error "bad trace magic"
            else begin
              let get32 () =
                let b = really_input_string ic 4 in
                Char.code b.[0]
                lor (Char.code b.[1] lsl 8)
                lor (Char.code b.[2] lsl 16)
                lor (Char.code b.[3] lsl 24)
              in
              let plen = get32 () in
              let sum = get32 () in
              if plen <> total - String.length magic - 8 then
                Error "trace payload length mismatch"
              else begin
                let payload = really_input_string ic plen in
                if Cdutil.Murmur3.hash payload <> sum then
                  Error "trace checksum mismatch"
                else
                  match (Marshal.from_string payload 0 : t) with
                  | tr -> Ok tr
                  | exception _ -> Error "trace payload unreadable"
              end
            end
          end
        with End_of_file -> Error "truncated trace file")
