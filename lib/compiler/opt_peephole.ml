(* Small pattern rewrites gated by individual profile flags:

   - [strength]: multiply by a power of two becomes a shift (semantics
     preserving under wrap-around; present for realism and as a
     performance pass all levels above -O0 share);

   - [promote_mul]: a 32-bit signed multiplication whose only use is an
     immediate sign-extension to 64 bits is rewritten to a 64-bit multiply
     of sign-extended operands. This changes semantics exactly when the
     32-bit multiplication would overflow -- the paper's IntError example
     (`long x = y + a * b` under clang -O1);

   - [fp_contract]: a*b+c fuses into a single-rounding fma;

   - [pow_to_exp2]: pow(2.0, x) becomes the cheaper exp2 libcall whose
     last-bit results differ from pow (the paper's floating-point Misc
     findings). *)

open Ir

let is_pow2 v = v > 1L && Int64.logand v (Int64.sub v 1L) = 0L

let log2 v =
  let rec go acc x = if x <= 1L then acc else go (acc + 1) (Int64.shift_right_logical x 1) in
  go 0 v

let strength (f : ifunc) : ifunc =
  let code =
    Array.map
      (fun ins ->
        match ins with
        | Ibin (Bmul, w, _, r, a, ImmI c) when is_pow2 c ->
          Ibin (Bshl, w, Cwrap, r, a, ImmI (Int64.of_int (log2 c)))
        | Ibin (Bmul, w, _, r, ImmI c, a) when is_pow2 c ->
          Ibin (Bshl, w, Cwrap, r, a, ImmI (Int64.of_int (log2 c)))
        | other -> other)
      f.code
  in
  { f with code }

(* single-use analysis over a whole function *)
let use_counts (f : ifunc) =
  let t = Hashtbl.create 64 in
  Array.iter
    (fun ins ->
      List.iter
        (fun r -> Hashtbl.replace t r (1 + Option.value ~default:0 (Hashtbl.find_opt t r)))
        (Ir.uses ins))
    f.code;
  t

let promote_mul (f : ifunc) : ifunc =
  let uses = use_counts f in
  let nregs = ref f.nregs in
  let fresh () =
    let r = !nregs in
    incr nregs;
    r
  in
  (* find: rM = mul.32s a, b ; ... ; rS = sext rM  with rM used once *)
  let mul_def : (reg, operand * operand) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  Array.iter
    (fun ins ->
      match ins with
      | Ibin (Bmul, W32, Csigned, r, a, b) ->
        Hashtbl.replace mul_def r (a, b);
        out := ins :: !out
      | Icast (Sext3264, rs, Reg rm) when Hashtbl.mem mul_def rm
                                          && Hashtbl.find_opt uses rm = Some 1 ->
        let a, b = Hashtbl.find mul_def rm in
        let a64 = fresh () and b64 = fresh () in
        out := Icast (Sext3264, a64, a) :: !out;
        out := Icast (Sext3264, b64, b) :: !out;
        out := Ibin (Bmul, W64, Csigned, rs, Reg a64, Reg b64) :: !out
      | Ilabel _ ->
        Hashtbl.reset mul_def;
        out := ins :: !out
      | _ ->
        (match Ir.def ins with Some r -> Hashtbl.remove mul_def r | None -> ());
        out := ins :: !out)
    f.code;
  { f with nregs = !nregs; code = Array.of_list (List.rev !out) }

let fp_contract (f : ifunc) : ifunc =
  let uses = use_counts f in
  let mul_def : (reg, operand * operand) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  Array.iter
    (fun ins ->
      match ins with
      | Ifbin (FMul, r, a, b) ->
        Hashtbl.replace mul_def r (a, b);
        out := ins :: !out
      | Ifbin (FAdd, r, Reg rm, c) when Hashtbl.mem mul_def rm
                                        && Hashtbl.find_opt uses rm = Some 1 ->
        let a, b = Hashtbl.find mul_def rm in
        out := Ifma (r, a, b, c) :: !out
      | Ifbin (FAdd, r, c, Reg rm) when Hashtbl.mem mul_def rm
                                        && Hashtbl.find_opt uses rm = Some 1 ->
        let a, b = Hashtbl.find mul_def rm in
        out := Ifma (r, a, b, c) :: !out
      | Ilabel _ ->
        Hashtbl.reset mul_def;
        out := ins :: !out
      | _ ->
        (match Ir.def ins with Some r -> Hashtbl.remove mul_def r | None -> ());
        out := ins :: !out)
    f.code;
  { f with code = Array.of_list (List.rev !out) }

let pow_to_exp2 (f : ifunc) : ifunc =
  let code =
    Array.map
      (fun ins ->
        match ins with
        | Ibuiltin (d, "pow", [ ImmF 2.0; x ]) -> Ibuiltin (d, "exp2", [ x ])
        | other -> other)
      f.code
  in
  { f with code }
