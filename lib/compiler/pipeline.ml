(* The compiler driver: front end once, then one backend run per profile.

   [compile profile tprogram] produces the "binary" (an {!Ir.unit_}) that
   the VM executes. [compile_all] builds the full differential set. *)

open Ir

(* passes renumber instructions, so the lowering's line table is stale
   the moment any of them ran *)
let strip_lines (f : ifunc) : ifunc =
  if Array.length f.code_lines = 0 then f else { f with code_lines = [||] }

let apply_func_passes (flags : Policy.opt_flags) (f : ifunc) : ifunc =
  let ( |>? ) f (cond, pass) = if cond then pass f else f in
  let f' =
    f
  |>? (flags.Policy.constfold, Opt_constfold.run)
  |>? (flags.Policy.copyprop, Opt_copyprop.run)
  |>? (flags.Policy.cse, Opt_cse.run ~unsafe:flags.Policy.unsafe_copyprop)
  |>? ( flags.Policy.ub_branch_fold || flags.Policy.null_deref_trap,
        Opt_ubfold.run ~null_trap:flags.Policy.null_deref_trap
          ~null_fold:flags.Policy.null_check_fold )
  |>? (flags.Policy.constfold, Opt_constfold.run)
  |>? (flags.Policy.copyprop, Opt_copyprop.run)
  |>? (flags.Policy.promote_mul, Opt_peephole.promote_mul)
  |>? (flags.Policy.strength, Opt_peephole.strength)
  |>? (flags.Policy.fp_contract, Opt_peephole.fp_contract)
  |>? (flags.Policy.pow_to_exp2, Opt_peephole.pow_to_exp2)
  |>? (flags.Policy.dce, Opt_dce.run)
  in
  if f' == f then f else strip_lines f'

let compile (profile : Policy.profile) (tp : Minic.Tast.tprogram) : unit_ =
  let u0 = Lower.lower_program profile tp in
  let flags = profile.Policy.flags in
  (* first round of local optimization *)
  let u1 =
    { u0 with funcs = List.map (fun (n, f) -> (n, apply_func_passes flags f)) u0.funcs }
  in
  (* inlining, then a local round to clean the inlined bodies; a second
     inline+cleanup round resolves call chains (an inlined body may itself
     contain calls that only now become inlinable/foldable) *)
  if flags.Policy.inline_limit > 0 then begin
    let round u =
      let u' = Opt_inline.run ~limit:flags.Policy.inline_limit u in
      { u' with
        funcs =
          List.map
            (fun (n, f) -> (n, strip_lines (apply_func_passes flags f)))
            u'.funcs;
      }
    in
    round (round u1)
  end
  else u1

let compile_source (profile : Policy.profile) (src : string) :
    (unit_, string) result =
  match Minic.frontend_of_source src with
  | Error _ as e -> e
  | Ok tp -> Ok (compile profile tp)

(* Compile one front-end result with every profile in the list. *)
let compile_all ?(profiles = Profiles.all) (tp : Minic.Tast.tprogram) : unit_ list =
  List.map (fun p -> compile p tp) profiles
