(* The compiler driver: front end once, then one backend run per profile.

   [compile profile tprogram] produces the "binary" (an {!Ir.unit_}) that
   the VM executes. [compile_all] builds the full differential set. *)

open Ir

(* passes renumber instructions, so the lowering's line table is stale
   the moment any of them ran *)
let strip_lines (f : ifunc) : ifunc =
  if Array.length f.code_lines = 0 then f else { f with code_lines = [||] }

let apply_func_passes (flags : Policy.opt_flags) (f : ifunc) : ifunc =
  let ( |>? ) f (cond, pass) = if cond then pass f else f in
  let f' =
    f
  |>? (flags.Policy.constfold, Opt_constfold.run)
  |>? (flags.Policy.copyprop, Opt_copyprop.run)
  |>? (flags.Policy.cse, Opt_cse.run ~unsafe:flags.Policy.unsafe_copyprop)
  |>? ( flags.Policy.ub_branch_fold || flags.Policy.null_deref_trap,
        Opt_ubfold.run ~null_trap:flags.Policy.null_deref_trap
          ~null_fold:flags.Policy.null_check_fold )
  |>? (flags.Policy.constfold, Opt_constfold.run)
  |>? (flags.Policy.copyprop, Opt_copyprop.run)
  |>? (flags.Policy.promote_mul, Opt_peephole.promote_mul)
  |>? (flags.Policy.strength, Opt_peephole.strength)
  |>? (flags.Policy.fp_contract, Opt_peephole.fp_contract)
  |>? (flags.Policy.pow_to_exp2, Opt_peephole.pow_to_exp2)
  |>? (flags.Policy.dce, Opt_dce.run)
  in
  if f' == f then f else strip_lines f'

(* --- line-table reconstruction ---

   Passes drop the line table ({!strip_lines}); diagnostics that run on
   optimized code (UnstableCheck's replay, divergence localization)
   then fall back to raw pcs. After the pass stack settles we rebuild
   an approximate table by aligning the optimized instruction stream
   against the unoptimized lowering of the same function (whose table
   is exact) with an LCS over register/label-insensitive instruction
   keys: matched instructions take the reference line, inserted ones
   inherit the nearest preceding match. Inlined bodies thus read as the
   call site's line — the right answer for a source-level report. *)

let op_key = function
  | Reg _ -> 1 (* registers are renumbered freely; identity is noise *)
  | ImmI v -> Hashtbl.hash v
  | ImmF f -> Hashtbl.hash f
  | Nullptr -> 2

let instr_key (i : instr) : int =
  let k x = Hashtbl.hash x in
  match i with
  | Iconst (_, o) -> k ("const", op_key o)
  | Imov (_, o) -> k ("mov", op_key o)
  | Ibin (b, w, c, _, x, y) -> k ("bin", b, w, c, op_key x, op_key y)
  | Ineg (w, c, _, x) -> k ("neg", w, c, op_key x)
  | Inot (w, _, x) -> k ("not", w, op_key x)
  | Ifbin (b, _, x, y) -> k ("fbin", b, op_key x, op_key y)
  | Ifma (_, a, b, c) -> k ("fma", op_key a, op_key b, op_key c)
  | Ifneg (_, x) -> k ("fneg", op_key x)
  | Icmp (c, w, _, x, y) -> k ("cmp", c, w, op_key x, op_key y)
  | Ifcmp (c, _, x, y) -> k ("fcmp", c, op_key x, op_key y)
  | Ipcmp (c, _, x, y) -> k ("pcmp", c, op_key x, op_key y)
  | Ipadd (_, x, y) -> k ("padd", op_key x, op_key y)
  | Ipdiff (_, x, y) -> k ("pdiff", op_key x, op_key y)
  | Icast (c, _, x) -> k ("cast", c, op_key x)
  | Ilea (_, s) -> k ("lea", s)
  | Iload (_, x) -> k ("load", op_key x)
  | Istore (x, y) -> k ("store", op_key x, op_key y)
  | Icall (_, fn, args) -> k ("call", fn, List.length args)
  | Ibuiltin (_, fn, args) -> k ("builtin", fn, List.length args)
  | Iprint items ->
    k ("print", List.map (function Flit s -> s | _ -> "%") items)
  | Ijmp _ -> k "jmp"
  | Ibr (x, _, _) -> k ("br", op_key x)
  | Iret x -> k ("ret", Option.map op_key x)
  | Ilabel _ -> k "label"
  | Itrap m -> k ("trap", m)

let rebuild_lines ~(reference : ifunc) (f : ifunc) : unit =
  let ref_lines = reference.code_lines in
  let m = min (Array.length reference.code) (Array.length ref_lines) in
  let n = Array.length f.code in
  (* quadratic DP: skip degenerate and absurdly large inputs *)
  if m = 0 || n = 0 || n * m > 4_000_000 then ()
  else begin
    let a = Array.map instr_key f.code in
    let b = Array.init m (fun j -> instr_key reference.code.(j)) in
    (* dp.(i).(j) = LCS length of a[i..) vs b[j..) *)
    let dp = Array.make_matrix (n + 1) (m + 1) 0 in
    for i = n - 1 downto 0 do
      for j = m - 1 downto 0 do
        dp.(i).(j) <-
          (if a.(i) = b.(j) then 1 + dp.(i + 1).(j + 1) else 0)
          |> max dp.(i + 1).(j)
          |> max dp.(i).(j + 1)
      done
    done;
    let lines = Array.make n ref_lines.(0) in
    let cur = ref ref_lines.(0) in
    let i = ref 0 and j = ref 0 in
    while !i < n && !j < m do
      if a.(!i) = b.(!j) && dp.(!i).(!j) = 1 + dp.(!i + 1).(!j + 1) then begin
        cur := ref_lines.(!j);
        lines.(!i) <- !cur;
        incr i;
        incr j
      end
      else if dp.(!i + 1).(!j) >= dp.(!i).(!j + 1) then begin
        lines.(!i) <- !cur; (* inserted by optimization *)
        incr i
      end
      else incr j (* deleted by optimization *)
    done;
    while !i < n do
      lines.(!i) <- !cur;
      incr i
    done;
    f.code_lines <- lines
  end

(* restore every stripped table in [u] from the unoptimized unit [u0] *)
let restore_lines (u0 : unit_) (u : unit_) : unit_ =
  List.iter
    (fun (n, f) ->
      if Array.length f.code_lines = 0 then
        match List.assoc_opt n u0.funcs with
        | Some reference -> rebuild_lines ~reference f
        | None -> ())
    u.funcs;
  u

let compile (profile : Policy.profile) (tp : Minic.Tast.tprogram) : unit_ =
  let u0 = Lower.lower_program profile tp in
  let flags = profile.Policy.flags in
  (* first round of local optimization *)
  let u1 =
    { u0 with funcs = List.map (fun (n, f) -> (n, apply_func_passes flags f)) u0.funcs }
  in
  (* inlining, then a local round to clean the inlined bodies; a second
     inline+cleanup round resolves call chains (an inlined body may itself
     contain calls that only now become inlinable/foldable) *)
  if flags.Policy.inline_limit > 0 then begin
    let round u =
      let u' = Opt_inline.run ~limit:flags.Policy.inline_limit u in
      { u' with
        funcs =
          List.map
            (fun (n, f) -> (n, strip_lines (apply_func_passes flags f)))
            u'.funcs;
      }
    in
    restore_lines u0 (round (round u1))
  end
  else restore_lines u0 u1

let compile_source (profile : Policy.profile) (src : string) :
    (unit_, string) result =
  match Minic.frontend_of_source src with
  | Error _ as e -> e
  | Ok tp -> Ok (compile profile tp)

(* Compile one front-end result with every profile in the list. *)
let compile_all ?(profiles = Profiles.all) (tp : Minic.Tast.tprogram) : unit_ list =
  List.map (fun p -> compile p tp) profiles
