(* Lowering: typed AST -> IR, parameterized by a {!Policy.profile}.

   This phase is where the unspecified-behaviour freedoms of the C
   standard are fixed by each implementation:

   - the evaluation order of call and print arguments ([arg_order]);
   - the meaning of [__LINE__] in multi-line statements ([line]);
   - which locals live in registers vs the stack frame
     ([promote_scalars]); an unpromoted scalar reads stack junk when used
     uninitialized, a promoted one reads the register-junk policy value;
   - falling off the end of a non-void function returns an unwritten
     register (the C UB of a missing return). *)

open Minic
open Ir

type storage = Streg of reg | Stslot of int

type lenv = {
  profile : Policy.profile;
  mutable rev_code : instr list;
  mutable nregs : int;
  mutable nlabels : int;
  storage : (string, storage) Hashtbl.t;
  mutable slots : frame_slot list; (* reversed *)
  mutable nslots : int;
  mutable loop_stack : (label * label) list; (* (break, continue) *)
  globals : (string, Ast.typ) Hashtbl.t;
  mutable rev_lines : int list;  (* statement line per emitted instruction *)
  mutable cur_line : int;        (* line of the statement being lowered *)
}

let emit env i =
  env.rev_code <- i :: env.rev_code;
  env.rev_lines <- env.cur_line :: env.rev_lines

let fresh_reg env =
  let r = env.nregs in
  env.nregs <- r + 1;
  r

let fresh_label env =
  let l = env.nlabels in
  env.nlabels <- l + 1;
  l

let add_slot env name size =
  let idx = env.nslots in
  env.nslots <- idx + 1;
  env.slots <- { slot_name = name; slot_size = size } :: env.slots;
  idx

let width_of = function
  | Ast.Tlong -> W64
  | Ast.Tint | Ast.Tptr _ | Ast.Tarr _ | Ast.Tdouble | Ast.Tvoid -> W32

let is_float_ty = function Ast.Tdouble -> true | _ -> false
let is_ptr_ty = function Ast.Tptr _ | Ast.Tarr _ -> true | _ -> false

let norm32 v = Int64.of_int32 (Int64.to_int32 v)

(* --- address-taken analysis: which locals must live in memory --- *)

let rec taken_expr acc (e : Tast.texpr) =
  match e.Tast.te with
  | Tast.TAddr { Tast.te = Tast.TVar (Tast.Vlocal, x); _ } -> x :: acc
  | Tast.TAddr inner -> taken_expr acc inner
  | Tast.TConstI _ | Tast.TConstF _ | Tast.TStr _ | Tast.TVar _ | Tast.TLine -> acc
  | Tast.TUnop (_, a) | Tast.TCast (_, a) | Tast.TDecay a -> taken_expr acc a
  | Tast.TBinop (_, a, b) | Tast.TIndex (a, b) | Tast.TAssign (a, b) ->
    taken_expr (taken_expr acc a) b
  | Tast.TDeref a -> taken_expr acc a
  | Tast.TCall (_, args) -> List.fold_left taken_expr acc args
  | Tast.TCond (a, b, c) -> taken_expr (taken_expr (taken_expr acc a) b) c

let rec taken_stmt acc (s : Tast.tstmt) =
  match s.Tast.ts with
  | Tast.TSExpr e -> taken_expr acc e
  | Tast.TSDecl (_, _, Some e) -> taken_expr acc e
  | Tast.TSDecl (_, _, None) -> acc
  | Tast.TSIf (c, a, b) ->
    let acc = taken_expr acc c in
    taken_block (taken_block acc a) b
  | Tast.TSWhile (c, b) -> taken_block (taken_expr acc c) b
  | Tast.TSReturn (Some e) -> taken_expr acc e
  | Tast.TSReturn None | Tast.TSBreak | Tast.TSContinue -> acc
  | Tast.TSPrint (_, args) -> List.fold_left taken_expr acc args
  | Tast.TSBlock b -> taken_block acc b

and taken_block acc b = List.fold_left taken_stmt acc b

(* collect every local declaration with its type, in source order *)
let rec decls_stmt acc (s : Tast.tstmt) =
  match s.Tast.ts with
  | Tast.TSDecl (t, name, _) -> (name, t) :: acc
  | Tast.TSIf (_, a, b) -> decls_block (decls_block acc a) b
  | Tast.TSWhile (_, b) -> decls_block acc b
  | Tast.TSBlock b -> decls_block acc b
  | Tast.TSExpr _ | Tast.TSReturn _ | Tast.TSBreak | Tast.TSContinue
  | Tast.TSPrint _ -> acc

and decls_block acc b = List.fold_left decls_stmt acc b

(* --- expression lowering --- *)

let line_const env (loc : Ast.loc) =
  match env.profile.Policy.line with
  | Policy.Ltoken -> loc.Ast.line
  | Policy.Lstmt -> loc.Ast.stmt_line

(* order arguments according to the profile's evaluation-order policy;
   returns temps in original (declaration) order *)
let order_args env (args : 'a list) (lower1 : 'a -> operand) : operand list =
  let indexed = List.mapi (fun i a -> (i, a)) args in
  let eval_sequence =
    match env.profile.Policy.arg_order with
    | Policy.Left_to_right -> indexed
    | Policy.Right_to_left -> List.rev indexed
  in
  let results =
    List.map
      (fun (i, a) ->
        let v = lower1 a in
        (* pin the value in a register so later argument evaluation cannot
           be reordered past it *)
        match v with
        | Reg _ | ImmI _ | ImmF _ | Nullptr -> (i, v))
      eval_sequence
  in
  List.map snd (List.sort (fun (i, _) (j, _) -> compare i j) results)

let rec lower_expr env (e : Tast.texpr) : operand =
  match e.Tast.te with
  | Tast.TConstI v ->
    (match e.Tast.tty with
    | Ast.Tlong -> ImmI v
    | _ -> ImmI (norm32 v))
  | Tast.TConstF f -> ImmF f
  | Tast.TStr name ->
    let r = fresh_reg env in
    emit env (Ilea (r, Sglobal name));
    Reg r
  | Tast.TLine -> ImmI (Int64.of_int (line_const env e.Tast.tloc))
  | Tast.TVar (kind, name) -> lower_var_read env kind name e.Tast.tty
  | Tast.TUnop (op, a) -> lower_unop env op a e.Tast.tty
  | Tast.TBinop ((Ast.Land | Ast.Lor) as op, a, b) -> lower_logic env op a b
  | Tast.TBinop (op, a, b) -> lower_binop env op a b e.Tast.tty
  | Tast.TCall (name, args) ->
    let temps = order_args env args (fun a -> pin env (lower_expr env a)) in
    let dest = if e.Tast.tty = Ast.Tvoid then None else Some (fresh_reg env) in
    if Ast.is_builtin name then emit env (Ibuiltin (dest, name, temps))
    else emit env (Icall (dest, name, temps));
    (match dest with Some r -> Reg r | None -> ImmI 0L)
  | Tast.TIndex _ | Tast.TDeref _ ->
    let addr = lower_address env e in
    let r = fresh_reg env in
    emit env (Iload (r, addr));
    Reg r
  | Tast.TAddr lv -> lower_address env lv
  | Tast.TAssign (lv, rhs) ->
    let v = pin env (lower_expr env rhs) in
    lower_store env lv v;
    v
  | Tast.TDecay inner -> lower_decay env inner
  | Tast.TCast (to_ty, a) -> lower_cast env to_ty a
  | Tast.TCond (c, t, f) ->
    let lt = fresh_label env and lf = fresh_label env and lend = fresh_label env in
    let r = fresh_reg env in
    let cv = lower_expr env c in
    emit env (Ibr (cv, lt, lf));
    emit env (Ilabel lt);
    let tv = lower_expr env t in
    emit env (Imov (r, tv));
    emit env (Ijmp lend);
    emit env (Ilabel lf);
    let fv = lower_expr env f in
    emit env (Imov (r, fv));
    emit env (Ilabel lend);
    Reg r

(* force a value into a register (used to pin evaluation order) *)
and pin env (v : operand) : operand =
  match v with
  | Reg _ -> v
  | ImmI _ | ImmF _ | Nullptr ->
    let r = fresh_reg env in
    emit env (Iconst (r, v));
    Reg r

and lower_var_read env kind name ty =
  match kind with
  | Tast.Vlocal ->
    (match Hashtbl.find_opt env.storage name with
    | Some (Streg r) -> Reg r
    | Some (Stslot i) ->
      let a = fresh_reg env in
      emit env (Ilea (a, Sslot i));
      (match ty with
      | Ast.Tarr _ -> Reg a (* handled via TDecay, but be permissive *)
      | _ ->
        let r = fresh_reg env in
        emit env (Iload (r, Reg a));
        Reg r)
    | None -> invalid_arg ("Lower: unknown local " ^ name))
  | Tast.Vglobal ->
    let a = fresh_reg env in
    emit env (Ilea (a, Sglobal name));
    (match ty with
    | Ast.Tarr _ -> Reg a
    | _ ->
      let r = fresh_reg env in
      emit env (Iload (r, Reg a));
      Reg r)

(* address of an lvalue or array value *)
and lower_address env (e : Tast.texpr) : operand =
  match e.Tast.te with
  | Tast.TVar (Tast.Vlocal, name) ->
    (match Hashtbl.find_opt env.storage name with
    | Some (Stslot i) ->
      let a = fresh_reg env in
      emit env (Ilea (a, Sslot i));
      Reg a
    | Some (Streg _) ->
      (* the checker only lets & reach memory-resident variables; storage
         assignment puts every address-taken local in a slot *)
      invalid_arg "Lower: address of a register-allocated local"
    | None -> invalid_arg ("Lower: unknown local " ^ name))
  | Tast.TVar (Tast.Vglobal, name) ->
    let a = fresh_reg env in
    emit env (Ilea (a, Sglobal name));
    Reg a
  | Tast.TIndex (p, i) ->
    let base = lower_expr env p in
    let iv = lower_expr env i in
    let scale =
      match p.Tast.tty with
      | Ast.Tptr t -> Ast.sizeof t
      | _ -> 1
    in
    let off =
      if scale = 1 then iv
      else begin
        let r = fresh_reg env in
        emit env (Ibin (Bmul, W64, Cwrap, r, iv, ImmI (Int64.of_int scale)));
        Reg r
      end
    in
    let a = fresh_reg env in
    emit env (Ipadd (a, base, off));
    Reg a
  | Tast.TDeref p -> lower_expr env p
  | Tast.TCast (_, inner) -> lower_address env inner
  | Tast.TStr name ->
    let a = fresh_reg env in
    emit env (Ilea (a, Sglobal name));
    Reg a
  | _ -> invalid_arg "Lower: not an lvalue"

and lower_decay env (inner : Tast.texpr) : operand =
  (* the value of an array expression is its address *)
  lower_address env inner

and lower_store env (lv : Tast.texpr) (v : operand) =
  match lv.Tast.te with
  | Tast.TVar (Tast.Vlocal, name) ->
    (match Hashtbl.find_opt env.storage name with
    | Some (Streg r) -> emit env (Imov (r, v))
    | Some (Stslot _) | None ->
      let a = lower_address env lv in
      emit env (Istore (a, v)))
  | _ ->
    let a = lower_address env lv in
    emit env (Istore (a, v))

and lower_unop env op (a : Tast.texpr) ty =
  let v = lower_expr env a in
  let r = fresh_reg env in
  (match op with
  | Ast.Neg ->
    if is_float_ty ty then emit env (Ifneg (r, v))
    else emit env (Ineg (width_of ty, Csigned, r, v))
  | Ast.Bnot -> emit env (Inot (width_of ty, r, v))
  | Ast.Lnot ->
    if is_float_ty a.Tast.tty then emit env (Ifcmp (Ceq, r, v, ImmF 0.))
    else if is_ptr_ty a.Tast.tty then emit env (Ipcmp (Ceq, r, v, Nullptr))
    else emit env (Icmp (Ceq, width_of a.Tast.tty, r, v, ImmI 0L)));
  Reg r

and lower_logic env op (a : Tast.texpr) (b : Tast.texpr) =
  (* short-circuit: a && b, a || b produce 0/1 *)
  let r = fresh_reg env in
  let l_b = fresh_label env and l_short = fresh_label env and l_end = fresh_label env in
  let va = lower_expr env a in
  (match op with
  | Ast.Land -> emit env (Ibr (va, l_b, l_short))
  | Ast.Lor -> emit env (Ibr (va, l_short, l_b))
  | _ -> assert false);
  emit env (Ilabel l_b);
  let vb = lower_expr env b in
  let rb = fresh_reg env in
  if is_float_ty b.Tast.tty then emit env (Ifcmp (Cne, rb, vb, ImmF 0.))
  else if is_ptr_ty b.Tast.tty then emit env (Ipcmp (Cne, rb, vb, Nullptr))
  else emit env (Icmp (Cne, width_of b.Tast.tty, rb, vb, ImmI 0L));
  emit env (Imov (r, Reg rb));
  emit env (Ijmp l_end);
  emit env (Ilabel l_short);
  emit env (Iconst (r, ImmI (match op with Ast.Lor -> 1L | _ -> 0L)));
  emit env (Ilabel l_end);
  Reg r

and lower_binop env op (a : Tast.texpr) (b : Tast.texpr) result_ty =
  let ta = a.Tast.tty and tb = b.Tast.tty in
  (* pointer arithmetic and comparison *)
  if is_ptr_ty ta || is_ptr_ty tb then lower_ptr_binop env op a b
  else if is_float_ty ta || is_float_ty tb then begin
    let va = lower_expr env a in
    let vb = lower_expr env b in
    let r = fresh_reg env in
    (match op with
    | Ast.Add -> emit env (Ifbin (FAdd, r, va, vb))
    | Ast.Sub -> emit env (Ifbin (FSub, r, va, vb))
    | Ast.Mul -> emit env (Ifbin (FMul, r, va, vb))
    | Ast.Div -> emit env (Ifbin (FDiv, r, va, vb))
    | Ast.Lt -> emit env (Ifcmp (Clt, r, va, vb))
    | Ast.Le -> emit env (Ifcmp (Cle, r, va, vb))
    | Ast.Gt -> emit env (Ifcmp (Cgt, r, va, vb))
    | Ast.Ge -> emit env (Ifcmp (Cge, r, va, vb))
    | Ast.Eq -> emit env (Ifcmp (Ceq, r, va, vb))
    | Ast.Ne -> emit env (Ifcmp (Cne, r, va, vb))
    | _ -> invalid_arg "Lower: invalid float operation");
    Reg r
  end
  else begin
    let va = lower_expr env a in
    let vb = lower_expr env b in
    let r = fresh_reg env in
    let w_op = width_of ta in
    let w_res = width_of result_ty in
    (match op with
    | Ast.Add -> emit env (Ibin (Badd, w_res, Csigned, r, va, vb))
    | Ast.Sub -> emit env (Ibin (Bsub, w_res, Csigned, r, va, vb))
    | Ast.Mul -> emit env (Ibin (Bmul, w_res, Csigned, r, va, vb))
    | Ast.Div -> emit env (Ibin (Bdiv, w_res, Csigned, r, va, vb))
    | Ast.Mod -> emit env (Ibin (Bmod, w_res, Csigned, r, va, vb))
    | Ast.Shl -> emit env (Ibin (Bshl, w_res, Csigned, r, va, vb))
    | Ast.Shr -> emit env (Ibin (Bshr, w_res, Csigned, r, va, vb))
    | Ast.Band -> emit env (Ibin (Band, w_res, Cwrap, r, va, vb))
    | Ast.Bor -> emit env (Ibin (Bor, w_res, Cwrap, r, va, vb))
    | Ast.Bxor -> emit env (Ibin (Bxor, w_res, Cwrap, r, va, vb))
    | Ast.Lt -> emit env (Icmp (Clt, w_op, r, va, vb))
    | Ast.Le -> emit env (Icmp (Cle, w_op, r, va, vb))
    | Ast.Gt -> emit env (Icmp (Cgt, w_op, r, va, vb))
    | Ast.Ge -> emit env (Icmp (Cge, w_op, r, va, vb))
    | Ast.Eq -> emit env (Icmp (Ceq, w_op, r, va, vb))
    | Ast.Ne -> emit env (Icmp (Cne, w_op, r, va, vb))
    | Ast.Land | Ast.Lor -> assert false);
    Reg r
  end

and lower_ptr_binop env op (a : Tast.texpr) (b : Tast.texpr) =
  let va = lower_expr env a in
  let vb = lower_expr env b in
  let r = fresh_reg env in
  let scale_of t = match t with Ast.Tptr el -> Ast.sizeof el | _ -> 1 in
  (match op with
  | Ast.Add when is_ptr_ty a.Tast.tty ->
    let off = scaled env vb (scale_of a.Tast.tty) in
    emit env (Ipadd (r, va, off))
  | Ast.Sub when is_ptr_ty a.Tast.tty && is_ptr_ty b.Tast.tty ->
    emit env (Ipdiff (r, va, vb))
  | Ast.Sub when is_ptr_ty a.Tast.tty ->
    let off = scaled env vb (scale_of a.Tast.tty) in
    let n = fresh_reg env in
    emit env (Ineg (W64, Cwrap, n, off));
    emit env (Ipadd (r, va, Reg n))
  | Ast.Lt -> emit env (Ipcmp (Clt, r, va, vb))
  | Ast.Le -> emit env (Ipcmp (Cle, r, va, vb))
  | Ast.Gt -> emit env (Ipcmp (Cgt, r, va, vb))
  | Ast.Ge -> emit env (Ipcmp (Cge, r, va, vb))
  | Ast.Eq -> emit env (Ipcmp (Ceq, r, va, vb))
  | Ast.Ne -> emit env (Ipcmp (Cne, r, va, vb))
  | _ -> invalid_arg "Lower: invalid pointer operation");
  Reg r

and scaled env v scale =
  if scale = 1 then v
  else begin
    let r = fresh_reg env in
    emit env (Ibin (Bmul, W64, Cwrap, r, v, ImmI (Int64.of_int scale)));
    Reg r
  end

and lower_cast env to_ty (a : Tast.texpr) =
  let from_ty = a.Tast.tty in
  let v = lower_expr env a in
  let same = Ast.equal_typ from_ty to_ty in
  if same then v
  else begin
    let r = fresh_reg env in
    (match (from_ty, to_ty) with
    | Ast.Tint, Ast.Tlong -> emit env (Icast (Sext3264, r, v))
    | Ast.Tlong, Ast.Tint -> emit env (Icast (Trunc6432, r, v))
    | Ast.Tint, Ast.Tdouble -> emit env (Icast (I2F W32, r, v))
    | Ast.Tlong, Ast.Tdouble -> emit env (Icast (I2F W64, r, v))
    | Ast.Tdouble, Ast.Tint -> emit env (Icast (F2I W32, r, v))
    | Ast.Tdouble, Ast.Tlong -> emit env (Icast (F2I W64, r, v))
    | Ast.Tptr _, Ast.Tint -> emit env (Icast (P2I W32, r, v))
    | Ast.Tptr _, Ast.Tlong -> emit env (Icast (P2I W64, r, v))
    | (Ast.Tint | Ast.Tlong), Ast.Tptr _ -> emit env (Icast (I2P, r, v))
    | Ast.Tptr _, Ast.Tptr _ -> emit env (Imov (r, v))
    | _ ->
      invalid_arg
        (Printf.sprintf "Lower: cast %s -> %s" (Ast.typ_to_string from_ty)
           (Ast.typ_to_string to_ty)));
    Reg r
  end

(* --- statements --- *)

let rec lower_stmt env (s : Tast.tstmt) =
  env.cur_line <- s.Tast.tsloc.Ast.stmt_line;
  match s.Tast.ts with
  | Tast.TSExpr e -> ignore (lower_expr env e)
  | Tast.TSDecl (_, name, init) ->
    (match init with
    | None -> () (* stays uninitialized: junk per storage class *)
    | Some e ->
      let v = lower_expr env e in
      (match Hashtbl.find_opt env.storage name with
      | Some (Streg r) -> emit env (Imov (r, v))
      | Some (Stslot i) ->
        let a = fresh_reg env in
        emit env (Ilea (a, Sslot i));
        emit env (Istore (Reg a, v))
      | None -> invalid_arg ("Lower: undeclared local " ^ name)))
  | Tast.TSIf (c, t, f) ->
    let lt = fresh_label env and lf = fresh_label env and lend = fresh_label env in
    let cv = lower_expr env c in
    emit env (Ibr (cv, lt, lf));
    emit env (Ilabel lt);
    lower_block env t;
    emit env (Ijmp lend);
    emit env (Ilabel lf);
    lower_block env f;
    emit env (Ilabel lend)
  | Tast.TSWhile (c, body) ->
    let lhead = fresh_label env and lbody = fresh_label env and lend = fresh_label env in
    emit env (Ijmp lhead);
    emit env (Ilabel lhead);
    let cv = lower_expr env c in
    emit env (Ibr (cv, lbody, lend));
    emit env (Ilabel lbody);
    env.loop_stack <- (lend, lhead) :: env.loop_stack;
    lower_block env body;
    (match env.loop_stack with
    | _ :: rest -> env.loop_stack <- rest
    | [] -> assert false);
    emit env (Ijmp lhead);
    emit env (Ilabel lend)
  | Tast.TSReturn None -> emit env (Iret None)
  | Tast.TSReturn (Some e) ->
    let v = lower_expr env e in
    emit env (Iret (Some v))
  | Tast.TSBreak ->
    (match env.loop_stack with
    | (lend, _) :: _ -> emit env (Ijmp lend)
    | [] -> invalid_arg "Lower: break outside loop")
  | Tast.TSContinue ->
    (match env.loop_stack with
    | (_, lhead) :: _ -> emit env (Ijmp lhead)
    | [] -> invalid_arg "Lower: continue outside loop")
  | Tast.TSPrint (fmt, args) ->
    let temps = order_args env args (fun a -> pin env (lower_expr env a)) in
    let items = build_fmt_items fmt args temps in
    emit env (Iprint items)
  | Tast.TSBlock b -> lower_block env b

and lower_block env b = List.iter (lower_stmt env) b

(* interleave format-string text with the evaluated arguments *)
and build_fmt_items fmt (args : Tast.texpr list) (temps : operand list) : fmt_item list
    =
  let items = ref [] in
  let push it = items := it :: !items in
  let buf = Buffer.create 16 in
  let flush_lit () =
    if Buffer.length buf > 0 then begin
      push (Flit (Buffer.contents buf));
      Buffer.clear buf
    end
  in
  let rem_args = ref (List.combine args temps) in
  let next_arg () =
    match !rem_args with
    | (a, t) :: rest ->
      rem_args := rest;
      (a, t)
    | [] -> invalid_arg "Lower: format/argument mismatch"
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    if fmt.[!i] = '%' && !i + 1 < n then begin
      (match fmt.[!i + 1] with
      | '%' -> Buffer.add_char buf '%'
      | 'd' ->
        flush_lit ();
        let _, t = next_arg () in
        push (Fint t)
      | 'u' ->
        flush_lit ();
        let _, t = next_arg () in
        push (Fuint t)
      | 'x' ->
        flush_lit ();
        let _, t = next_arg () in
        push (Fhex t)
      | 'c' ->
        flush_lit ();
        let _, t = next_arg () in
        push (Fchar t)
      | 's' ->
        flush_lit ();
        let _, t = next_arg () in
        push (Fstr t)
      | 'f' ->
        flush_lit ();
        let _, t = next_arg () in
        push (Ffloat t)
      | 'p' ->
        flush_lit ();
        let _, t = next_arg () in
        push (Fptr t)
      | 'l' ->
        (* %ld, validated by the type checker *)
        flush_lit ();
        let _, t = next_arg () in
        push (Flong t);
        incr i
      | c -> invalid_arg (Printf.sprintf "Lower: bad format %%%c" c));
      i := !i + 2
    end
    else begin
      Buffer.add_char buf fmt.[!i];
      incr i
    end
  done;
  flush_lit ();
  List.rev !items

(* --- functions and programs --- *)

let lower_func profile globals (f : Tast.tfunc) : ifunc =
  let env =
    {
      profile;
      rev_code = [];
      nregs = List.length f.Tast.tparams;
      nlabels = 0;
      storage = Hashtbl.create 16;
      slots = [];
      nslots = 0;
      loop_stack = [];
      globals;
      rev_lines = [];
      cur_line = 0;
    }
  in
  let taken = taken_block [] f.Tast.tbody in
  let promote = profile.Policy.flags.Policy.promote_scalars in
  let assign_storage name ty =
    let scalar = match ty with Ast.Tarr _ -> false | _ -> true in
    if scalar && promote && not (List.mem name taken) then
      Hashtbl.replace env.storage name (Streg (fresh_reg env))
    else begin
      let idx = add_slot env name (Ast.sizeof ty) in
      Hashtbl.replace env.storage name (Stslot idx)
    end
  in
  (* parameters: values arrive in registers 0..n-1, then move to storage *)
  List.iteri
    (fun i (ty, name) ->
      assign_storage name ty;
      match Hashtbl.find env.storage name with
      | Streg r -> emit env (Imov (r, Reg i))
      | Stslot idx ->
        let a = fresh_reg env in
        emit env (Ilea (a, Sslot idx));
        emit env (Istore (Reg a, Reg i)))
    f.Tast.tparams;
  (* locals, in declaration order *)
  let local_decls = List.rev (decls_block [] f.Tast.tbody) in
  List.iter (fun (name, ty) -> assign_storage name ty) local_decls;
  lower_block env f.Tast.tbody;
  (* implicit function epilogue *)
  (match f.Tast.tfret with
  | Ast.Tvoid -> emit env (Iret None)
  | _ when f.Tast.tfname = "main" ->
    (* C semantics: falling off main returns 0 *)
    emit env (Iret (Some (ImmI 0L)))
  | _ ->
    (* falling off a non-void function: the returned value is whatever an
       unwritten register holds -- deliberate UB modeling *)
    let r = fresh_reg env in
    emit env (Iret (Some (Reg r))));
  (* slots stay in declaration index order here: [Sslot i] indexes this
     array. Whether the VM lays index 0 at the low or high end of the frame
     is the layout policy ([slots_reversed]). *)
  let slot_arr = Array.of_list (List.rev env.slots) in
  {
    name = f.Tast.tfname;
    nparams = List.length f.Tast.tparams;
    nregs = env.nregs;
    slots = slot_arr;
    code = Array.of_list (List.rev env.rev_code);
    code_lines = Array.of_list (List.rev env.rev_lines);
  }

let lower_program (profile : Policy.profile) (tp : Tast.tprogram) : Ir.unit_ =
  let globals = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace globals g.Ast.gname g.Ast.gtyp) tp.Tast.tglobals;
  let funcs =
    List.map (fun f -> (f.Tast.tfname, lower_func profile globals f)) tp.Tast.tfuncs
  in
  let iglobals =
    List.map
      (fun g ->
        { g_name = g.Ast.gname; g_size = Ast.sizeof g.Ast.gtyp; g_init = g.Ast.ginit })
      tp.Tast.tglobals
  in
  {
    funcs;
    globals = iglobals;
    runtime = profile.Policy.runtime;
    impl_name = profile.Policy.pname;
  }
