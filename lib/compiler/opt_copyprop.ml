(* Block-local copy propagation.

   Forwards [Imov r, Reg s] and immediate moves into later uses. Register
   copies are invalidated when either side is redefined; memory is not
   involved (registers cannot alias), so stores never invalidate. *)

open Ir

let run (f : ifunc) : ifunc =
  let copies : (reg, operand) Hashtbl.t = Hashtbl.create 32 in
  let reset () = Hashtbl.reset copies in
  let lookup r = Hashtbl.find_opt copies r in
  let kill r =
    Hashtbl.remove copies r;
    Hashtbl.iter
      (fun k v -> match v with Reg s when s = r -> Hashtbl.remove copies k | _ -> ())
      copies
  in
  let rewrite ins =
    let ins = Opt_common.map_operands (Opt_common.subst_operand lookup) ins in
    (match Ir.def ins with Some r -> kill r | None -> ());
    (match ins with
    | Imov (r, src) | Iconst (r, src) ->
      (match src with
      | Reg s when s = r -> ()
      | _ -> Hashtbl.replace copies r src)
    | _ -> ());
    [ ins ]
  in
  { f with code = Opt_common.rewrite_local ~reset rewrite f.code }
