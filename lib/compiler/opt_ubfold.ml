(* UB-exploiting simplifications. This pass is the heart of the unstable
   code phenomenon: every rewrite here is justified ONLY by the assumption
   that the program contains no undefined behavior.

   1. Overflow-guard rewriting (Listing 1 of the paper):
        x + y < x   becomes   y < 0       (signed: no-overflow assumed)
        x < x + y   becomes   y > 0
        x + c1 < c2 becomes   x < c2-c1   (when c2-c1 does not overflow)
      With a constant non-negative y, constant folding then deletes the
      guard entirely, exactly like clang -O2 does to dump_data().

   2. Null-check elimination ([null_check_fold]): a pointer that has been
      dereferenced earlier in the block is assumed non-null, so later
      null tests fold to their "non-null" answer (gcc's famous
      -fdelete-null-pointer-checks behaviour). *)

open Ir

type dinfo =
  | Dadd of width * operand * operand (* signed add: lhs, rhs *)
  | Dsub of width * operand * operand (* signed sub: lhs, rhs *)
  | Dother

let run ?(null_trap = false) ~null_fold (f : ifunc) : ifunc =
  (* per-block: what defined each register, and which pointer registers
     have been dereferenced *)
  let defs : (reg, dinfo) Hashtbl.t = Hashtbl.create 32 in
  let derefed : (reg, unit) Hashtbl.t = Hashtbl.create 16 in
  let reset () =
    Hashtbl.reset defs;
    Hashtbl.reset derefed
  in
  let same_op a b =
    match (a, b) with
    | Reg x, Reg y -> x = y
    | ImmI x, ImmI y -> x = y
    | Nullptr, Nullptr -> true
    | _ -> false
  in
  let add_info o =
    match o with
    | Reg r -> (match Hashtbl.find_opt defs r with Some d -> d | None -> Dother)
    | ImmI _ | ImmF _ | Nullptr -> Dother
  in
  let rewrite ins =
    let result =
      match ins with
      | Icmp (c, w, r, a, b) -> (
        match (c, add_info a, add_info b) with
        (* (x + y) OP x : rewrite under the no-overflow assumption *)
        | Clt, Dadd (w', x, y), _ when w = w' && same_op b x ->
          [ Icmp (Clt, w, r, y, ImmI 0L) ]
        | Cle, Dadd (w', x, y), _ when w = w' && same_op b x ->
          [ Icmp (Cle, w, r, y, ImmI 0L) ]
        | Cgt, Dadd (w', x, y), _ when w = w' && same_op b x ->
          [ Icmp (Cgt, w, r, y, ImmI 0L) ]
        | Cge, Dadd (w', x, y), _ when w = w' && same_op b x ->
          [ Icmp (Cge, w, r, y, ImmI 0L) ]
        (* x OP (x + y) *)
        | Clt, _, Dadd (w', x, y) when w = w' && same_op a x ->
          [ Icmp (Cgt, w, r, y, ImmI 0L) ]
        | Cle, _, Dadd (w', x, y) when w = w' && same_op a x ->
          [ Icmp (Cge, w, r, y, ImmI 0L) ]
        | Cgt, _, Dadd (w', x, y) when w = w' && same_op a x ->
          [ Icmp (Clt, w, r, y, ImmI 0L) ]
        | Cge, _, Dadd (w', x, y) when w = w' && same_op a x ->
          [ Icmp (Cle, w, r, y, ImmI 0L) ]
        (* (x - y) OP x : no-underflow assumption *)
        | Clt, Dsub (w', x, y), _ when w = w' && same_op b x ->
          [ Icmp (Cgt, w, r, y, ImmI 0L) ]
        | Cle, Dsub (w', x, y), _ when w = w' && same_op b x ->
          [ Icmp (Cge, w, r, y, ImmI 0L) ]
        | Cgt, Dsub (w', x, y), _ when w = w' && same_op b x ->
          [ Icmp (Clt, w, r, y, ImmI 0L) ]
        | Cge, Dsub (w', x, y), _ when w = w' && same_op b x ->
          [ Icmp (Cle, w, r, y, ImmI 0L) ]
        (* x OP (x - y) *)
        | Clt, _, Dsub (w', x, y) when w = w' && same_op a x ->
          [ Icmp (Clt, w, r, y, ImmI 0L) ]
        | Cgt, _, Dsub (w', x, y) when w = w' && same_op a x ->
          [ Icmp (Cgt, w, r, y, ImmI 0L) ]
        (* (x + c1) OP c2  ->  x OP (c2 - c1) when representable *)
        | _, Dadd (w', x, ImmI c1), Dother when w = w' ->
          (match b with
          | ImmI c2 ->
            let d = Int64.sub c2 c1 in
            let fits =
              match w with
              | W32 -> d >= Int64.of_int32 Int32.min_int && d <= Int64.of_int32 Int32.max_int
              | W64 -> true (* Int64 arithmetic cannot overflow here meaningfully *)
            in
            if fits then [ Icmp (c, w, r, x, ImmI d) ] else [ ins ]
          | _ -> [ ins ])
        | _ -> [ ins ])
      (* a provably-null dereference is UB: emit a compiler trap (LLVM's
         ud2), which crashes with a different signal than the natural
         segfault of an unoptimized build *)
      | Iload (_, Nullptr) when null_trap -> [ Itrap "null dereference" ]
      | Istore (Nullptr, _) when null_trap -> [ Itrap "null dereference" ]
      | Ipcmp (Ceq, r, Reg p, Nullptr) when null_fold && Hashtbl.mem derefed p ->
        [ Iconst (r, ImmI 0L) ]
      | Ipcmp (Cne, r, Reg p, Nullptr) when null_fold && Hashtbl.mem derefed p ->
        [ Iconst (r, ImmI 1L) ]
      | Ipcmp (Ceq, r, Nullptr, Reg p) when null_fold && Hashtbl.mem derefed p ->
        [ Iconst (r, ImmI 0L) ]
      | Ipcmp (Cne, r, Nullptr, Reg p) when null_fold && Hashtbl.mem derefed p ->
        [ Iconst (r, ImmI 1L) ]
      | _ -> [ ins ]
    in
    (* update block state from the ORIGINAL instruction *)
    (match ins with
    | Iload (_, Reg p) -> Hashtbl.replace derefed p ()
    | Istore (Reg p, _) -> Hashtbl.replace derefed p ()
    | _ -> ());
    (match Ir.def ins with
    | Some r ->
      Hashtbl.remove defs r;
      Hashtbl.remove derefed r;
      (* a key mentioning r as operand is now stale *)
      let mentions_r o = match o with Reg x -> x = r | _ -> false in
      let stale =
        Hashtbl.fold
          (fun k v acc ->
            match v with
            | Dadd (_, x, y) | Dsub (_, x, y) ->
              if mentions_r x || mentions_r y then k :: acc else acc
            | Dother -> acc)
          defs []
      in
      List.iter (Hashtbl.remove defs) stale
    | None -> ());
    (match ins with
    | Ibin (Badd, w, Csigned, r, a, b) ->
      if not (a = Reg r || b = Reg r) then Hashtbl.replace defs r (Dadd (w, a, b))
    | Ibin (Bsub, w, Csigned, r, a, b) ->
      if not (a = Reg r || b = Reg r) then Hashtbl.replace defs r (Dsub (w, a, b))
    | _ -> ());
    result
  in
  { f with code = Opt_common.rewrite_local ~reset rewrite f.code }
