(* Register-based linear IR shared by all compiler implementations.

   Lowering from the typed AST and every optimization pass produce this
   IR; the VM ({!Cdvm.Exec}) interprets it. Design notes:

   - Integer arithmetic carries a {!width} (MiniC [int] is 32-bit, [long]
     64-bit) and a {!csem} marker saying whether the operation originated
     from C-level *signed* arithmetic (whose overflow is undefined and
     checked by UBSan) or from compiler-introduced address math (defined,
     wrapping, never checked).
   - Pointers are first-class values; [Ilea] materializes the address of a
     global or frame slot, [Ipadd] does pointer arithmetic in cells.
   - [__LINE__] does not survive lowering: each implementation bakes in a
     constant according to its line-interpretation policy.
   - Basic blocks are delimited by [Ilabel]; [Ijmp]/[Ibr]/[Iret] terminate
     them. Fallthrough into a label is allowed. *)

type reg = int
type label = int

type width = W32 | W64

(* Origin of an integer operation, for sanitizer checks and folding rules. *)
type csem =
  | Csigned   (* source-level signed arithmetic: overflow is UB *)
  | Cwrap     (* defined wrap-around (compiler-introduced, or masked) *)

type ibin =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Bshl | Bshr
  | Band | Bor | Bxor

type fbin = FAdd | FSub | FMul | FDiv

type cmp = Clt | Cle | Cgt | Cge | Ceq | Cne

type cast =
  | Sext3264      (* int -> long *)
  | Trunc6432     (* long -> int *)
  | I2F of width  (* signed int -> double *)
  | F2I of width  (* double -> signed int, truncating *)
  | P2I of width  (* pointer -> integer: absolute address (layout!) *)
  | I2P           (* integer -> pointer: resolved via the address space *)

type operand =
  | Reg of reg
  | ImmI of int64
  | ImmF of float
  | Nullptr

(* print-format fragments after lowering *)
type fmt_item =
  | Flit of string
  | Fint of operand        (* %d  signed 32 *)
  | Flong of operand       (* %ld signed 64 *)
  | Fuint of operand       (* %u *)
  | Fhex of operand        (* %x *)
  | Fchar of operand       (* %c *)
  | Fstr of operand        (* %s : NUL-terminated cells *)
  | Ffloat of operand      (* %f : 6 decimals *)
  | Fptr of operand        (* %p : absolute address *)

type instr =
  | Iconst of reg * operand                      (* materialize an immediate *)
  | Imov of reg * operand
  | Ibin of ibin * width * csem * reg * operand * operand
  | Ineg of width * csem * reg * operand
  | Inot of width * reg * operand                (* bitwise complement *)
  | Ifbin of fbin * reg * operand * operand
  | Ifma of reg * operand * operand * operand    (* fused a*b + c *)
  | Ifneg of reg * operand
  | Icmp of cmp * width * reg * operand * operand
  | Ifcmp of cmp * reg * operand * operand
  | Ipcmp of cmp * reg * operand * operand       (* pointer comparison *)
  | Ipadd of reg * operand * operand             (* ptr + cells *)
  | Ipdiff of reg * operand * operand            (* ptr - ptr, in cells *)
  | Icast of cast * reg * operand
  | Ilea of reg * sym
  | Iload of reg * operand                       (* [reg] <- mem[ptr] *)
  | Istore of operand * operand                  (* mem[ptr] <- value *)
  | Icall of reg option * string * operand list
  | Ibuiltin of reg option * string * operand list
  | Iprint of fmt_item list
  | Ijmp of label
  | Ibr of operand * label * label               (* cond, then, else *)
  | Iret of operand option
  | Ilabel of label
  | Itrap of string                              (* compiler-emitted abort *)

and sym =
  | Sglobal of string
  | Sslot of int         (* frame slot index *)

type frame_slot = {
  slot_name : string;    (* for diagnostics *)
  slot_size : int;       (* in cells *)
}

type ifunc = {
  name : string;
  nparams : int;         (* parameters arrive in registers 0..nparams-1 *)
  mutable nregs : int;
  mutable slots : frame_slot array;
  mutable code : instr array;
  mutable code_lines : int array;
      (* source line of the statement each instruction was lowered from,
         parallel to [code]. Optimization passes renumber instructions
         and drop the table (length 0); consumers fall back to the pc. *)
}

(* source line of [pc], when the line table survived *)
let line_of_pc (f : ifunc) (pc : int) : int option =
  if pc >= 0 && pc < Array.length f.code_lines then Some f.code_lines.(pc)
  else None

type iglobal = { g_name : string; g_size : int; g_init : int64 list }

(* A compiled binary: IR for every function plus the runtime policies the
   VM must apply (memory layout, uninitialized-value policy, ...), fixed
   at compile time by the producing implementation. *)
type unit_ = {
  funcs : (string * ifunc) list;
  globals : iglobal list;
  runtime : Policy.runtime;
  impl_name : string;    (* e.g. "gccx-O2", for reports *)
}

let func unit_ name = List.assoc_opt name unit_.funcs

(* --- operand / instruction utilities --- *)

let uses_of_operand = function Reg r -> [ r ] | ImmI _ | ImmF _ | Nullptr -> []

let fmt_operands items =
  List.concat_map
    (function
      | Flit _ -> []
      | Fint o | Flong o | Fuint o | Fhex o | Fchar o | Fstr o | Ffloat o | Fptr o
        -> [ o ])
    items

let uses = function
  | Iconst (_, o) | Imov (_, o) | Ineg (_, _, _, o) | Inot (_, _, o)
  | Ifneg (_, o) | Icast (_, _, o) | Iload (_, o) ->
    uses_of_operand o
  | Ibin (_, _, _, _, a, b)
  | Ifbin (_, _, a, b)
  | Icmp (_, _, _, a, b)
  | Ifcmp (_, _, a, b)
  | Ipcmp (_, _, a, b)
  | Ipadd (_, a, b)
  | Ipdiff (_, a, b)
  | Istore (a, b) ->
    uses_of_operand a @ uses_of_operand b
  | Ifma (_, a, b, c) -> uses_of_operand a @ uses_of_operand b @ uses_of_operand c
  | Icall (_, _, args) | Ibuiltin (_, _, args) -> List.concat_map uses_of_operand args
  | Iprint items -> List.concat_map uses_of_operand (fmt_operands items)
  | Ibr (c, _, _) -> uses_of_operand c
  | Iret (Some o) -> uses_of_operand o
  | Ilea _ | Ijmp _ | Iret None | Ilabel _ | Itrap _ -> []

let def = function
  | Iconst (r, _) | Imov (r, _)
  | Ibin (_, _, _, r, _, _)
  | Ineg (_, _, r, _) | Inot (_, r, _)
  | Ifbin (_, r, _, _) | Ifma (r, _, _, _) | Ifneg (r, _)
  | Icmp (_, _, r, _, _) | Ifcmp (_, r, _, _) | Ipcmp (_, r, _, _)
  | Ipadd (r, _, _) | Ipdiff (r, _, _)
  | Icast (_, r, _) | Ilea (r, _) | Iload (r, _) ->
    Some r
  | Icall (d, _, _) | Ibuiltin (d, _, _) -> d
  | Istore _ | Iprint _ | Ijmp _ | Ibr _ | Iret _ | Ilabel _ | Itrap _ -> None

(* Pure instructions may be removed when their result is unused. Loads are
   impure only through faults; dead loads are still removable (real
   compilers delete dead loads), as are dead divisions — deleting a dead
   division whose divisor is zero is precisely one of the UB-exploiting
   behaviours this system models. *)
let removable_if_dead = function
  | Iconst _ | Imov _ | Ibin _ | Ineg _ | Inot _ | Ifbin _ | Ifma _ | Ifneg _
  | Icmp _ | Ifcmp _ | Ipcmp _ | Ipadd _ | Ipdiff _ | Icast _ | Ilea _ | Iload _ ->
    true
  | Istore _ | Icall _ | Ibuiltin _ | Iprint _ | Ijmp _ | Ibr _ | Iret _
  | Ilabel _ | Itrap _ -> false

(* --- pretty-printing, for dumps and tests --- *)

let string_of_ibin = function
  | Badd -> "add" | Bsub -> "sub" | Bmul -> "mul" | Bdiv -> "div"
  | Bmod -> "mod" | Bshl -> "shl" | Bshr -> "shr" | Band -> "and"
  | Bor -> "or" | Bxor -> "xor"

let string_of_cmp = function
  | Clt -> "lt" | Cle -> "le" | Cgt -> "gt" | Cge -> "ge" | Ceq -> "eq" | Cne -> "ne"

let string_of_width = function W32 -> "32" | W64 -> "64"

let string_of_operand = function
  | Reg r -> Printf.sprintf "r%d" r
  | ImmI v -> Int64.to_string v
  | ImmF f -> Printf.sprintf "%g" f
  | Nullptr -> "null"

let string_of_sym = function
  | Sglobal g -> "@" ^ g
  | Sslot i -> Printf.sprintf "slot[%d]" i

let string_of_instr ins =
  let o = string_of_operand in
  match ins with
  | Iconst (r, v) -> Printf.sprintf "r%d = const %s" r (o v)
  | Imov (r, a) -> Printf.sprintf "r%d = mov %s" r (o a)
  | Ibin (op, w, sem, r, a, b) ->
    Printf.sprintf "r%d = %s.%s%s %s, %s" r (string_of_ibin op) (string_of_width w)
      (match sem with Csigned -> "s" | Cwrap -> "w")
      (o a) (o b)
  | Ineg (w, _, r, a) -> Printf.sprintf "r%d = neg.%s %s" r (string_of_width w) (o a)
  | Inot (w, r, a) -> Printf.sprintf "r%d = not.%s %s" r (string_of_width w) (o a)
  | Ifbin (op, r, a, b) ->
    let s = match op with FAdd -> "fadd" | FSub -> "fsub" | FMul -> "fmul" | FDiv -> "fdiv" in
    Printf.sprintf "r%d = %s %s, %s" r s (o a) (o b)
  | Ifma (r, a, b, c) -> Printf.sprintf "r%d = fma %s, %s, %s" r (o a) (o b) (o c)
  | Ifneg (r, a) -> Printf.sprintf "r%d = fneg %s" r (o a)
  | Icmp (c, w, r, a, b) ->
    Printf.sprintf "r%d = cmp.%s.%s %s, %s" r (string_of_cmp c) (string_of_width w) (o a) (o b)
  | Ifcmp (c, r, a, b) -> Printf.sprintf "r%d = fcmp.%s %s, %s" r (string_of_cmp c) (o a) (o b)
  | Ipcmp (c, r, a, b) -> Printf.sprintf "r%d = pcmp.%s %s, %s" r (string_of_cmp c) (o a) (o b)
  | Ipadd (r, p, off) -> Printf.sprintf "r%d = padd %s, %s" r (o p) (o off)
  | Ipdiff (r, p, q) -> Printf.sprintf "r%d = pdiff %s, %s" r (o p) (o q)
  | Icast (k, r, a) ->
    let s =
      match k with
      | Sext3264 -> "sext" | Trunc6432 -> "trunc" | I2F _ -> "i2f"
      | F2I _ -> "f2i" | P2I _ -> "p2i" | I2P -> "i2p"
    in
    Printf.sprintf "r%d = %s %s" r s (o a)
  | Ilea (r, s) -> Printf.sprintf "r%d = lea %s" r (string_of_sym s)
  | Iload (r, p) -> Printf.sprintf "r%d = load %s" r (o p)
  | Istore (p, v) -> Printf.sprintf "store %s <- %s" (o p) (o v)
  | Icall (None, f, args) ->
    Printf.sprintf "call %s(%s)" f (String.concat ", " (List.map o args))
  | Icall (Some r, f, args) ->
    Printf.sprintf "r%d = call %s(%s)" r f (String.concat ", " (List.map o args))
  | Ibuiltin (None, f, args) ->
    Printf.sprintf "builtin %s(%s)" f (String.concat ", " (List.map o args))
  | Ibuiltin (Some r, f, args) ->
    Printf.sprintf "r%d = builtin %s(%s)" r f (String.concat ", " (List.map o args))
  | Iprint items ->
    let frag = function
      | Flit s -> Printf.sprintf "%S" s
      | Fint x -> "%d:" ^ o x
      | Flong x -> "%ld:" ^ o x
      | Fuint x -> "%u:" ^ o x
      | Fhex x -> "%x:" ^ o x
      | Fchar x -> "%c:" ^ o x
      | Fstr x -> "%s:" ^ o x
      | Ffloat x -> "%f:" ^ o x
      | Fptr x -> "%p:" ^ o x
    in
    Printf.sprintf "print [%s]" (String.concat "; " (List.map frag items))
  | Ijmp l -> Printf.sprintf "jmp L%d" l
  | Ibr (c, t, f) -> Printf.sprintf "br %s, L%d, L%d" (o c) t f
  | Iret None -> "ret"
  | Iret (Some v) -> Printf.sprintf "ret %s" (o v)
  | Ilabel l -> Printf.sprintf "L%d:" l
  | Itrap msg -> Printf.sprintf "trap %S" msg

let dump_func f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "func %s (params=%d regs=%d slots=%d)\n" f.name f.nparams f.nregs
       (Array.length f.slots));
  Array.iter
    (fun ins ->
      (match ins with
      | Ilabel _ -> Buffer.add_string buf (string_of_instr ins)
      | _ ->
        Buffer.add_string buf "  ";
        Buffer.add_string buf (string_of_instr ins));
      Buffer.add_char buf '\n')
    f.code;
  Buffer.contents buf
