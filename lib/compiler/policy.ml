(* Implementation policies.

   A "compiler implementation" in the paper's sense (gcc-O0, clang-O2, ...)
   is, for us, a {!profile}: a pass pipeline plus a set of choices about
   how undefined or unspecified constructs are resolved. The choices split
   into compile-time policies (applied during lowering/optimization) and
   run-time policies (carried into the compiled unit and applied by the
   VM: memory layout, uninitialized values, pointer ordering).

   Every policy is a point where the C standard gives implementations
   freedom; two profiles differing in any of them remain *legal* and agree
   on UB-free programs, which is exactly the property CompDiff needs. *)

(* --- run-time policies --- *)

(* What an uninitialized register or fresh heap block reads as. Frame
   slots are more faithful: the stack region is never cleared, so an
   uninitialized slot reads whatever the previous frame left there. *)
type uninit_policy =
  | Uzero                 (* always 0 (e.g. a zeroing allocator) *)
  | Upattern of int       (* deterministic per-address junk from this seed *)

type layout = {
  globals_base : int;       (* first address of the globals region *)
  global_gap : int;         (* padding cells between globals *)
  globals_reversed : bool;  (* place globals in reverse declaration order *)
  stack_base : int;         (* stack region start *)
  stack_size : int;         (* stack region size in cells *)
  frame_align : int;        (* frames padded to a multiple of this *)
  slot_gap : int;           (* padding cells between frame slots *)
  slots_reversed : bool;    (* frame slots in reverse source order *)
  heap_base : int;
  heap_gap : int;           (* padding cells between heap blocks *)
  heap_reuse : bool;        (* free-list reuse (LIFO) vs always-fresh *)
}

(* How relational pointer comparison across objects resolves. Within one
   object every implementation agrees (offset order). *)
type ptrcmp_policy =
  | Pabs                  (* by absolute address under this unit's layout *)
  | Pobjseq               (* by allocation sequence number, then offset *)

type runtime = {
  layout : layout;
  uninit_reg : uninit_policy;   (* promoted scalars (registers) *)
  uninit_heap : uninit_policy;  (* fresh heap blocks *)
  stack_seed : int;             (* initial junk pattern of the stack region *)
  ptrcmp : ptrcmp_policy;
  memcpy_backward : bool;       (* libc memcpy direction: unspecified for
                                   overlapping regions (CWE-475 territory) *)
}

(* --- compile-time policies --- *)

type arg_order = Left_to_right | Right_to_left

type line_policy =
  | Ltoken        (* __LINE__ = line of the token itself *)
  | Lstmt         (* __LINE__ = line where the statement began *)

type opt_flags = {
  constfold : bool;
  copyprop : bool;
  cse : bool;
  ub_branch_fold : bool;  (* fold overflow/null-guard patterns assuming no UB *)
  null_check_fold : bool; (* delete null tests dominated by a dereference *)
  null_deref_trap : bool; (* turn provably-null dereferences into traps
                             (LLVM-style ud2), changing the crash kind *)
  dce : bool;
  inline_limit : int;     (* max callee size in instructions; 0 = no inlining *)
  strength : bool;        (* mul-by-pow2 -> shift (semantics preserving) *)
  promote_mul : bool;     (* widen int*int feeding a long context (clang-O1) *)
  fp_contract : bool;     (* fuse a*b+c into fma *)
  pow_to_exp2 : bool;     (* pow(2.0, x) -> exp2(x) libcall *)
  promote_scalars : bool; (* keep address-free scalars in registers *)
  unsafe_copyprop : bool; (* KNOWN-BAD alias handling; only in the buggy
                             profile used to reproduce RQ2 compiler bugs *)
}

type profile = {
  pname : string;          (* e.g. "gccx-O2" *)
  family : string;         (* "gccx" | "clangx" *)
  level : string;          (* "O0" .. "O3", "Os" *)
  arg_order : arg_order;
  line : line_policy;
  flags : opt_flags;
  runtime : runtime;
}

let no_opt =
  {
    constfold = false;
    copyprop = false;
    cse = false;
    ub_branch_fold = false;
    null_check_fold = false;
    null_deref_trap = false;
    dce = false;
    inline_limit = 0;
    strength = false;
    promote_mul = false;
    fp_contract = false;
    pow_to_exp2 = false;
    promote_scalars = false;
    unsafe_copyprop = false;
  }

(* --- canonical serializations (for structural binary dedup) --- *)

(* These strings are injective per policy component: two components
   serialize equally iff they are structurally equal, so they can be
   used as equivalence-class keys. *)

let uninit_signature = function
  | Uzero -> "z"
  | Upattern seed -> "p" ^ string_of_int seed

let layout_signature (l : layout) =
  Printf.sprintf "gb%d,gg%d,gr%b,sb%d,ss%d,fa%d,sg%d,sr%b,hb%d,hg%d,hr%b"
    l.globals_base l.global_gap l.globals_reversed l.stack_base l.stack_size
    l.frame_align l.slot_gap l.slots_reversed l.heap_base l.heap_gap
    l.heap_reuse

let memory_runtime_signature (r : runtime) =
  Printf.sprintf "L{%s},uh%s,sk%d,pc%s,mb%b"
    (layout_signature r.layout)
    (uninit_signature r.uninit_heap)
    r.stack_seed
    (match r.ptrcmp with Pabs -> "abs" | Pobjseq -> "seq")
    r.memcpy_backward

let runtime_signature (r : runtime) =
  Printf.sprintf "%s,ur%s" (memory_runtime_signature r)
    (uninit_signature r.uninit_reg)

(* Deterministic junk value for an uninitialized location. *)
let uninit_value policy ~addr =
  match policy with
  | Uzero -> 0L
  | Upattern seed ->
    let h = Cdutil.Rng.mix seed addr in
    (* small-ish, clearly non-zero, and of varying sign so that branches
       on uninitialized values can go either way *)
    let v = (h land 0xFFFF) + 1 in
    Int64.of_int (if h land 0x10000 <> 0 then -v else v)
