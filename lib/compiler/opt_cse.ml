(* Block-local common-subexpression elimination by value numbering.

   Pure computations with identical opcodes and operands reuse the earlier
   result. Loads participate with a memory epoch: any store, call or
   builtin bumps the epoch, invalidating load equivalences.

   When [unsafe] is set (only in the deliberately buggy profile used by
   the RQ2 experiment), stores do NOT bump the epoch -- a classic alias
   analysis miscompilation: a load after a store through a may-aliasing
   pointer reuses the stale value. *)

open Ir

type key =
  | Kbin of ibin * width * operand * operand
  | Kneg of width * operand
  | Knot of width * operand
  | Kfbin of fbin * operand * operand
  | Kcmp of cmp * width * operand * operand
  | Kfcmp of cmp * operand * operand
  | Kpcmp of cmp * operand * operand
  | Kpadd of operand * operand
  | Kpdiff of operand * operand
  | Kcast of cast * operand
  | Klea of sym
  | Kload of int * operand (* epoch, address *)

let run ~unsafe (f : ifunc) : ifunc =
  let table : (key, reg) Hashtbl.t = Hashtbl.create 32 in
  (* canonical representative for registers proven equal by an earlier CSE
     hit, so chained redundancies (lea; load; lea'; load') fold in one
     pass *)
  let canon : (reg, reg) Hashtbl.t = Hashtbl.create 16 in
  let epoch = ref 0 in
  let reset () =
    Hashtbl.reset table;
    Hashtbl.reset canon;
    incr epoch
  in
  let mentions r (k : key) =
    let op = function Reg s -> s = r | ImmI _ | ImmF _ | Nullptr -> false in
    match k with
    | Kbin (_, _, a, b) | Kfbin (_, a, b) | Kcmp (_, _, a, b) | Kfcmp (_, a, b)
    | Kpcmp (_, a, b) | Kpadd (a, b) | Kpdiff (a, b) ->
      op a || op b
    | Kneg (_, a) | Knot (_, a) | Kcast (_, a) | Kload (_, a) -> op a
    | Klea _ -> false
  in
  let kill r =
    let dead = Hashtbl.fold (fun k v acc -> if v = r || mentions r k then k :: acc else acc) table [] in
    List.iter (Hashtbl.remove table) dead;
    Hashtbl.remove canon r;
    let stale =
      Hashtbl.fold (fun k v acc -> if v = r then k :: acc else acc) canon []
    in
    List.iter (Hashtbl.remove canon) stale
  in
  let key_of = function
    | Ibin (op, w, _, _, a, b) -> Some (Kbin (op, w, a, b))
    | Ineg (w, _, _, a) -> Some (Kneg (w, a))
    | Inot (w, _, a) -> Some (Knot (w, a))
    | Ifbin (op, _, a, b) -> Some (Kfbin (op, a, b))
    | Icmp (c, w, _, a, b) -> Some (Kcmp (c, w, a, b))
    | Ifcmp (c, _, a, b) -> Some (Kfcmp (c, a, b))
    | Ipcmp (c, _, a, b) -> Some (Kpcmp (c, a, b))
    | Ipadd (_, a, b) -> Some (Kpadd (a, b))
    | Ipdiff (_, a, b) -> Some (Kpdiff (a, b))
    | Icast (k, _, a) -> Some (Kcast (k, a))
    | Ilea (_, s) -> Some (Klea s)
    | Iload (_, p) -> Some (Kload (!epoch, p))
    | _ -> None
  in
  let rewrite ins =
    (* canonicalize operands through known equivalences first *)
    let ins =
      Opt_common.map_operands
        (fun o ->
          match o with
          | Reg s -> (
            match Hashtbl.find_opt canon s with Some c -> Reg c | None -> o)
          | _ -> o)
        ins
    in
    (* memory effects: conservative epoch bump *)
    (match ins with
    | Istore _ -> if not unsafe then incr epoch
    | Icall _ | Ibuiltin _ -> incr epoch
    | _ -> ());
    match (key_of ins, Ir.def ins) with
    | Some k, Some r ->
      (match Hashtbl.find_opt table k with
      | Some prev when prev <> r ->
        kill r;
        Hashtbl.replace canon r prev;
        [ Imov (r, Reg prev) ]
      | Some _ ->
        kill r;
        [ ins ]
      | None ->
        kill r;
        (* never record a key whose operands mention the destination: the
           key would describe the pre-assignment value of r *)
        if not (mentions r k) then Hashtbl.replace table k r;
        [ ins ])
    | _, Some r ->
      kill r;
      [ ins ]
    | _, None -> [ ins ]
  in
  { f with code = Opt_common.rewrite_local ~reset rewrite f.code }
