(* Constant folding and algebraic simplification (block-local).

   Tracks registers holding known constants, substitutes them into uses,
   folds fully-constant operations and branches on constants. The fold of
   an out-of-range shift count to 0 (see {!Opt_common.fold_ibin}) is a
   deliberate, legal UB exploitation that diverges from the masking
   runtime. *)

open Ir

let run (f : ifunc) : ifunc =
  let consts : (reg, operand) Hashtbl.t = Hashtbl.create 32 in
  let reset () = Hashtbl.reset consts in
  let lookup r = Hashtbl.find_opt consts r in
  let kill r =
    Hashtbl.remove consts r;
    (* drop any mapping whose value mentions r -- cannot happen since we
       only store immediates, but keep the invariant obvious *)
    ()
  in
  let set_const r o = Hashtbl.replace consts r o in
  let rewrite ins =
    let ins = Opt_common.map_operands (Opt_common.subst_operand lookup) ins in
    (match Ir.def ins with Some r -> kill r | None -> ());
    match ins with
    | Iconst (r, ((ImmI _ | ImmF _ | Nullptr) as v)) | Imov (r, ((ImmI _ | ImmF _ | Nullptr) as v)) ->
      set_const r v;
      [ ins ]
    | Ibin (op, w, _, r, ImmI a, ImmI b) ->
      (match Opt_common.fold_ibin op w a b with
      | Some v ->
        set_const r (ImmI v);
        [ Iconst (r, ImmI v) ]
      | None -> [ ins ])
    (* an out-of-range constant shift count is UB regardless of the other
       operand: fold the whole shift to the poison choice 0 *)
    | Ibin ((Bshl | Bshr), w, _, r, _, ImmI c)
      when c < 0L || c >= Int64.of_int (Opt_common.bits w) ->
      set_const r (ImmI 0L);
      [ Iconst (r, ImmI 0L) ]
    (* algebraic identities *)
    | Ibin (Badd, _, _, r, a, ImmI 0L) | Ibin (Badd, _, _, r, ImmI 0L, a)
    | Ibin (Bsub, _, _, r, a, ImmI 0L)
    | Ibin (Bmul, _, _, r, a, ImmI 1L) | Ibin (Bmul, _, _, r, ImmI 1L, a)
    | Ibin (Bdiv, _, _, r, a, ImmI 1L)
    | Ibin ((Bshl | Bshr), _, _, r, a, ImmI 0L)
    | Ibin (Bor, _, _, r, a, ImmI 0L) | Ibin (Bor, _, _, r, ImmI 0L, a)
    | Ibin (Bxor, _, _, r, a, ImmI 0L) | Ibin (Bxor, _, _, r, ImmI 0L, a) ->
      (match a with
      | ImmI _ | ImmF _ | Nullptr -> set_const r a
      | Reg _ -> ());
      [ Imov (r, a) ]
    | Ibin (Bmul, _, _, r, _, ImmI 0L) | Ibin (Bmul, _, _, r, ImmI 0L, _)
    | Ibin (Band, _, _, r, _, ImmI 0L) | Ibin (Band, _, _, r, ImmI 0L, _) ->
      set_const r (ImmI 0L);
      [ Iconst (r, ImmI 0L) ]
    | Ineg (w, _, r, ImmI a) ->
      let v = Opt_common.norm w (Int64.neg a) in
      set_const r (ImmI v);
      [ Iconst (r, ImmI v) ]
    | Inot (w, r, ImmI a) ->
      let v = Opt_common.norm w (Int64.lognot a) in
      set_const r (ImmI v);
      [ Iconst (r, ImmI v) ]
    | Ifbin (op, r, ImmF a, ImmF b) ->
      let v =
        match op with
        | FAdd -> a +. b
        | FSub -> a -. b
        | FMul -> a *. b
        | FDiv -> a /. b
      in
      set_const r (ImmF v);
      [ Iconst (r, ImmF v) ]
    | Ifneg (r, ImmF a) ->
      set_const r (ImmF (-.a));
      [ Iconst (r, ImmF (-.a)) ]
    | Icmp (c, _, r, ImmI a, ImmI b) ->
      let v = Opt_common.fold_icmp c a b in
      set_const r (ImmI v);
      [ Iconst (r, ImmI v) ]
    | Ifcmp (c, r, ImmF a, ImmF b) ->
      let v = Opt_common.fold_fcmp c a b in
      set_const r (ImmI v);
      [ Iconst (r, ImmI v) ]
    | Ipcmp (Ceq, r, Nullptr, Nullptr) ->
      set_const r (ImmI 1L);
      [ Iconst (r, ImmI 1L) ]
    | Ipcmp (Cne, r, Nullptr, Nullptr) ->
      set_const r (ImmI 0L);
      [ Iconst (r, ImmI 0L) ]
    | Icast (I2P, r, ImmI 0L) ->
      set_const r Nullptr;
      [ Iconst (r, Nullptr) ]
    | Icast (I2F _, r, ImmI a) ->
      let v = Int64.to_float a in
      set_const r (ImmF v);
      [ Iconst (r, ImmF v) ]
    | Icast (k, r, ImmI a) ->
      (match Opt_common.fold_cast k a with
      | Some v ->
        set_const r (ImmI v);
        [ Iconst (r, ImmI v) ]
      | None -> [ ins ])
    | Ibr (ImmI c, t, e) -> [ Ijmp (if c <> 0L then t else e) ]
    | Ibr (ImmF c, t, e) -> [ Ijmp (if c <> 0. then t else e) ]
    | Ibr (Nullptr, _, e) -> [ Ijmp e ]
    | _ -> [ ins ]
  in
  { f with code = Opt_common.rewrite_local ~reset rewrite f.code }
