(* Function inlining.

   Calls to small non-recursive functions are replaced by the callee body:
   registers and labels are renumbered into the caller's space, callee
   frame slots are appended to the caller frame (which changes the stack
   layout -- a real source of divergence for out-of-bounds and
   uninitialized-slot programs), returns become moves plus a jump to a
   fresh continuation label. *)

open Ir

let size_of (f : ifunc) = Array.length f.code

let is_directly_recursive (f : ifunc) =
  Array.exists
    (function Icall (_, callee, _) -> callee = f.name | _ -> false)
    f.code

(* substitute registers via offset, labels via offset *)
let shift_instr ~dreg ~dlabel (ins : instr) : instr =
  let sr r = r + dreg in
  let op = function Reg r -> Reg (sr r) | o -> o in
  let ins = Opt_common.map_operands op ins in
  let relabel l = l + dlabel in
  let ins =
    match ins with
    | Ijmp l -> Ijmp (relabel l)
    | Ibr (c, t, e) -> Ibr (c, relabel t, relabel e)
    | Ilabel l -> Ilabel (relabel l)
    | other -> other
  in
  (* shift destination registers *)
  match ins with
  | Iconst (r, o) -> Iconst (sr r, o)
  | Imov (r, o) -> Imov (sr r, o)
  | Ibin (b, w, s, r, x, y) -> Ibin (b, w, s, sr r, x, y)
  | Ineg (w, s, r, x) -> Ineg (w, s, sr r, x)
  | Inot (w, r, x) -> Inot (w, sr r, x)
  | Ifbin (b, r, x, y) -> Ifbin (b, sr r, x, y)
  | Ifma (r, x, y, z) -> Ifma (sr r, x, y, z)
  | Ifneg (r, x) -> Ifneg (sr r, x)
  | Icmp (c, w, r, x, y) -> Icmp (c, w, sr r, x, y)
  | Ifcmp (c, r, x, y) -> Ifcmp (c, sr r, x, y)
  | Ipcmp (c, r, x, y) -> Ipcmp (c, sr r, x, y)
  | Ipadd (r, x, y) -> Ipadd (sr r, x, y)
  | Ipdiff (r, x, y) -> Ipdiff (sr r, x, y)
  | Icast (k, r, x) -> Icast (k, sr r, x)
  | Ilea (r, s) -> Ilea (sr r, s)
  | Iload (r, p) -> Iload (sr r, p)
  | Icall (d, f, args) -> Icall (Option.map sr d, f, args)
  | Ibuiltin (d, f, args) -> Ibuiltin (Option.map sr d, f, args)
  | Istore _ | Iprint _ | Ijmp _ | Ibr _ | Iret _ | Ilabel _ | Itrap _ -> ins

let shift_slots ~dslot (ins : instr) : instr =
  match ins with
  | Ilea (r, Sslot i) -> Ilea (r, Sslot (i + dslot))
  | other -> other

(* inline every eligible call site in [caller] once *)
let inline_into ~limit (unit_funcs : (string * ifunc) list) (caller : ifunc) :
    ifunc * bool =
  let changed = ref false in
  let nregs = ref caller.nregs in
  let nlabels =
    ref
      (Array.fold_left
         (fun acc ins ->
           match ins with
           | Ilabel l -> max acc (l + 1)
           | Ijmp l -> max acc (l + 1)
           | Ibr (_, t, e) -> max acc (max t e + 1)
           | _ -> acc)
         0 caller.code)
  in
  let slots = ref (Array.to_list caller.slots) in
  let nslots = ref (List.length !slots) in
  let out = ref [] in
  let emit i = out := i :: !out in
  Array.iter
    (fun ins ->
      match ins with
      | Icall (dest, fname, args) when fname <> caller.name -> (
        match List.assoc_opt fname unit_funcs with
        | Some callee
          when size_of callee <= limit && not (is_directly_recursive callee) ->
          changed := true;
          let dreg = !nregs in
          let dlabel = !nlabels in
          let dslot = !nslots in
          nregs := !nregs + callee.nregs + 1;
          nlabels := !nlabels + 1;
          let cont_label = dlabel in
          (* count callee labels to advance the label counter *)
          let callee_max_label =
            Array.fold_left
              (fun acc i ->
                match i with
                | Ilabel l -> max acc (l + 1)
                | Ijmp l -> max acc (l + 1)
                | Ibr (_, t, e) -> max acc (max t e + 1)
                | _ -> acc)
              0 callee.code
          in
          nlabels := !nlabels + callee_max_label;
          slots := !slots @ Array.to_list callee.slots;
          nslots := !nslots + Array.length callee.slots;
          (* parameters: callee regs 0..n-1 *)
          List.iteri (fun i a -> emit (Imov (dreg + i, a))) args;
          (* body, with returns turned into moves + jumps *)
          Array.iter
            (fun cins ->
              let cins = shift_slots ~dslot cins in
              let cins = shift_instr ~dreg ~dlabel:(dlabel + 1) cins in
              match cins with
              | Iret None -> emit (Ijmp cont_label)
              | Iret (Some v) ->
                (match dest with
                | Some d -> emit (Imov (d, v))
                | None -> ());
                emit (Ijmp cont_label)
              | other -> emit other)
            callee.code;
          emit (Ilabel cont_label)
        | _ -> emit ins)
      | _ -> emit ins)
    caller.code;
  ( {
      caller with
      nregs = !nregs;
      slots = Array.of_list !slots;
      code = Array.of_list (List.rev !out);
    },
    !changed )

let run ~limit (u : unit_) : unit_ =
  if limit <= 0 then u
  else begin
    let funcs =
      List.map
        (fun (name, f) ->
          let f', _ = inline_into ~limit u.funcs f in
          (name, f'))
        u.funcs
    in
    { u with funcs }
  end
