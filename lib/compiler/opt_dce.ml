(* Dead code elimination.

   Two parts, run to a fixpoint:
   1. unreachable code removal (blocks that no jump/branch/fallthrough can
      reach are deleted -- this is how a folded UB guard disappears);
   2. dead definition removal: pure instructions (including loads and
      divisions!) whose destination register is never used anywhere in the
      function are dropped. Deleting a dead division whose divisor may be
      zero removes the runtime trap an unoptimized build still has --
      deliberate UB-exploiting behavior. *)

open Ir

(* indices of instructions reachable from the entry *)
let reachable (code : instr array) : bool array =
  let n = Array.length code in
  let label_pos = Hashtbl.create 16 in
  Array.iteri
    (fun i ins -> match ins with Ilabel l -> Hashtbl.replace label_pos l i | _ -> ())
    code;
  let seen = Array.make n false in
  let rec walk i =
    if i < n && not seen.(i) then begin
      seen.(i) <- true;
      match code.(i) with
      | Ijmp l -> (match Hashtbl.find_opt label_pos l with Some j -> walk j | None -> ())
      | Ibr (_, t, e) ->
        (match Hashtbl.find_opt label_pos t with Some j -> walk j | None -> ());
        (match Hashtbl.find_opt label_pos e with Some j -> walk j | None -> ())
      | Iret _ | Itrap _ -> ()
      | _ -> walk (i + 1)
    end
  in
  if n > 0 then walk 0;
  seen

let remove_unreachable (f : ifunc) : ifunc * bool =
  let seen = reachable f.code in
  let changed = ref false in
  let out = ref [] in
  Array.iteri
    (fun i ins ->
      if seen.(i) then out := ins :: !out
      else
        match ins with
        | Ilabel _ -> out := ins :: !out (* keep labels: cheap and safe *)
        | _ -> changed := true)
    f.code;
  ({ f with code = Array.of_list (List.rev !out) }, !changed)

let remove_dead_defs (f : ifunc) : ifunc * bool =
  let use_count = Hashtbl.create 64 in
  let bump r = Hashtbl.replace use_count r (1 + Option.value ~default:0 (Hashtbl.find_opt use_count r)) in
  Array.iter (fun ins -> List.iter bump (Ir.uses ins)) f.code;
  let changed = ref false in
  let keep ins =
    match Ir.def ins with
    | Some r when Ir.removable_if_dead ins && not (Hashtbl.mem use_count r) ->
      changed := true;
      false
    | _ -> true
  in
  let code = Array.of_list (List.filter keep (Array.to_list f.code)) in
  ({ f with code }, !changed)

let run (f : ifunc) : ifunc =
  let rec fixpoint f n =
    if n = 0 then f
    else begin
      let f1, c1 = remove_unreachable f in
      let f2, c2 = remove_dead_defs f1 in
      if c1 || c2 then fixpoint f2 (n - 1) else f2
    end
  in
  fixpoint f 16
