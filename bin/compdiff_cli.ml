(* The compdiff command-line tool.

   Subcommands mirror the paper's workflow on MiniC source files:

     compdiff compile FILE -p gccx-O2 --dump-ir
     compdiff run FILE -p clangx-O3 --input 'AB'
     compdiff diff FILE --input 'AB'
     compdiff fuzz FILE --execs 5000
     compdiff juliet --per-cwe 8
     compdiff static FILE --tool unstable
     compdiff projects --name tcpdump --execs 4000
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let frontend_of_file path =
  match Minic.frontend_of_source (read_file path) with
  | Ok tp -> tp
  | Error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 2

let ast_of_file path =
  match Minic.Parser.parse_program_result (read_file path) with
  | Ok p -> p
  | Error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 2

let profile_of_name name =
  match Cdcompiler.Profiles.by_name name with
  | Some p -> p
  | None ->
    if name = "clangx-Os-buggy" then Cdcompiler.Profiles.clangx_os_buggy
    else begin
      Printf.eprintf "unknown profile %s; available: %s\n" name
        (String.concat ", "
           (List.map (fun p -> p.Cdcompiler.Policy.pname) Cdcompiler.Profiles.all));
      exit 2
    end

(* --- common args --- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file.")

let profile_arg =
  Arg.(
    value
    & opt string "gccx-O0"
    & info [ "p"; "profile" ] ~docv:"PROFILE"
        ~doc:"Compiler implementation (e.g. gccx-O0, clangx-O3).")

let input_arg =
  Arg.(
    value & opt string ""
    & info [ "input" ] ~docv:"BYTES" ~doc:"Program input (stdin bytes).")

let fuel_arg =
  Arg.(
    value & opt int 200_000
    & info [ "fuel" ] ~docv:"N" ~doc:"Execution fuel (instruction budget).")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel compilation/execution (default: \
           $(b,Domain.recommended_domain_count()) - 1, or the \
           $(b,COMPDIFF_JOBS) environment variable).")

(* 0 = keep the default (COMPDIFF_JOBS or the domain count heuristic) *)
let apply_jobs n = if n > 0 then Cdutil.Pool.set_default_jobs n

(* --- compile --- *)

let compile_cmd =
  let dump_ir =
    Arg.(value & flag & info [ "dump-ir" ] ~doc:"Dump the IR of every function.")
  in
  let action file pname dump =
    let tp = frontend_of_file file in
    let u = Cdcompiler.Pipeline.compile (profile_of_name pname) tp in
    Printf.printf "compiled %s with %s: %d functions, %d globals\n" file
      u.Cdcompiler.Ir.impl_name
      (List.length u.Cdcompiler.Ir.funcs)
      (List.length u.Cdcompiler.Ir.globals);
    if dump then
      List.iter
        (fun (_, f) -> print_string (Cdcompiler.Ir.dump_func f))
        u.Cdcompiler.Ir.funcs;
    0
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a MiniC file with one implementation.")
    Term.(const action $ file_arg $ profile_arg $ dump_ir)

(* --- run --- *)

let run_cmd =
  let reference =
    Arg.(
      value & flag
      & info [ "reference" ]
          ~doc:
            "Use the tree-walking reference interpreter instead of the linked \
             image executor (both are byte-identical; see vmcheck).")
  in
  let action file pname input fuel reference =
    let tp = frontend_of_file file in
    let u = Cdcompiler.Pipeline.compile (profile_of_name pname) tp in
    let config = { Cdvm.Exec.default_config with Cdvm.Exec.input; fuel } in
    let r =
      if reference then Cdvm.Exec.run ~config u
      else Cdvm.Exec.run_linked ~config (Cdvm.Image.link u)
    in
    print_string r.Cdvm.Exec.stdout;
    Printf.printf "[%s: %s, fuel used %d]\n" pname
      (Cdvm.Trap.status_to_string r.Cdvm.Exec.status)
      r.Cdvm.Exec.fuel_used;
    match r.Cdvm.Exec.status with Cdvm.Trap.Exit c -> c | _ -> 1
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and execute a MiniC file.")
    Term.(const action $ file_arg $ profile_arg $ input_arg $ fuel_arg $ reference)

(* --- vmcheck --- *)

(* Differentially test the two executors against each other: every
   profile, several inputs, each input run twice through the same arena
   (so arena reuse is exercised too). *)
let vmcheck_cmd =
  let inputs_arg =
    Arg.(
      value & opt_all string []
      & info [ "input" ] ~docv:"BYTES"
          ~doc:"Input to check (repeatable; default: a small builtin set).")
  in
  let action file inputs fuel =
    let tp = frontend_of_file file in
    let inputs = if inputs = [] then [ ""; "A"; "zz9"; "\x00\xffB" ] else inputs in
    let mismatches = ref 0 in
    List.iter
      (fun (p : Cdcompiler.Policy.profile) ->
        let u = Cdcompiler.Pipeline.compile p tp in
        let img = Cdvm.Image.link u in
        let arena = Cdvm.Arena.create img in
        List.iter
          (fun input ->
            let config = { Cdvm.Exec.default_config with Cdvm.Exec.input; fuel } in
            let want = Cdvm.Exec.run ~config u in
            let check label (got : Cdvm.Exec.result) =
              if got <> want then begin
                incr mismatches;
                Printf.printf
                  "MISMATCH %s %s input %S:\n  reference: %s, fuel %d, %S\n  %s: %s, fuel %d, %S\n"
                  p.Cdcompiler.Policy.pname label input
                  (Cdvm.Trap.status_to_string want.Cdvm.Exec.status)
                  want.Cdvm.Exec.fuel_used want.Cdvm.Exec.stdout label
                  (Cdvm.Trap.status_to_string got.Cdvm.Exec.status)
                  got.Cdvm.Exec.fuel_used got.Cdvm.Exec.stdout
              end
            in
            check "linked" (Cdvm.Exec.run_linked ~config ~arena img);
            check "linked-reused" (Cdvm.Exec.run_linked ~config ~arena img))
          inputs)
      Cdcompiler.Profiles.all;
    if !mismatches = 0 then begin
      Printf.printf "vmcheck %s: %d profiles x %d inputs x 2 runs, all byte-identical\n"
        file
        (List.length Cdcompiler.Profiles.all)
        (List.length inputs);
      0
    end
    else 1
  in
  Cmd.v
    (Cmd.info "vmcheck"
       ~doc:
         "Check that the linked-image executor is byte-identical to the \
          reference interpreter on a MiniC file (all profiles, arena reuse \
          included).")
    Term.(const action $ file_arg $ inputs_arg $ fuel_arg)

(* --- diff --- *)

let diff_cmd =
  let strip_addr =
    Arg.(
      value & flag
      & info [ "strip-addresses" ] ~doc:"Normalize 0x... addresses before comparing.")
  in
  let action file input fuel strip jobs =
    apply_jobs jobs;
    let tp = frontend_of_file file in
    let normalize =
      if strip then Compdiff.Normalize.strip_hex_addresses
      else Compdiff.Normalize.identity
    in
    let o = Compdiff.Oracle.create ~fuel ~normalize tp in
    match Compdiff.Oracle.check o ~input with
    | Compdiff.Oracle.Agree obs ->
      Printf.printf "all %d implementations agree (%s)\n"
        (List.length (Compdiff.Oracle.names o))
        (Cdvm.Trap.status_to_string obs.Compdiff.Oracle.status);
      print_string obs.Compdiff.Oracle.output;
      0
    | Compdiff.Oracle.Diverge obs ->
      print_string (Compdiff.Oracle.report_to_string ~input obs);
      1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Run one input through every implementation and compare outputs.")
    Term.(const action $ file_arg $ input_arg $ fuel_arg $ strip_addr $ jobs_arg)

(* --- trace --- *)

let trace_cmd =
  let action file pname input fuel =
    let tp = frontend_of_file file in
    let u = Cdcompiler.Pipeline.compile (profile_of_name pname) tp in
    let events, status = Compdiff.Localize.trace ~fuel u ~input in
    List.iteri
      (fun i (e : Compdiff.Localize.event) ->
        Printf.printf "%4d  [%s] %S\n" i e.Compdiff.Localize.ev_fn
          e.Compdiff.Localize.ev_text)
      events;
    Printf.printf "status: %s\n" (Cdvm.Trap.status_to_string status);
    0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print the observable-event trace of one implementation's execution.")
    Term.(const action $ file_arg $ profile_arg $ input_arg $ fuel_arg)

(* --- localize --- *)

let localize_cmd =
  let action file input fuel =
    let tp = frontend_of_file file in
    let o = Compdiff.Oracle.create ~fuel tp in
    match Compdiff.Oracle.check o ~input with
    | Compdiff.Oracle.Agree _ ->
      Printf.printf "no divergence on this input; nothing to localize\n";
      0
    | Compdiff.Oracle.Diverge obs -> (
      match
        Compdiff.Localize.of_divergence ~fuel o (Compdiff.Oracle.binaries o) obs
          ~input
      with
      | Some l ->
        print_string (Compdiff.Localize.to_string l);
        (match Compdiff.Triage.suggest_root_cause (ast_of_file file) l with
        | Some rc -> print_string (Compdiff.Triage.root_cause_to_string rc)
        | None -> ());
        1
      | None ->
        Printf.printf
          "outputs agree event-by-event; the divergence is in the termination status\n";
        1)
  in
  Cmd.v
    (Cmd.info "localize"
       ~doc:
         "Locate the first divergent observable event between two disagreeing implementations.")
    Term.(const action $ file_arg $ input_arg $ fuel_arg)

(* --- fuzz --- *)

let fuzz_cmd =
  let execs =
    Arg.(value & opt int 5_000 & info [ "execs" ] ~docv:"N" ~doc:"Execution budget.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Fuzzer RNG seed.")
  in
  let corpus =
    Arg.(
      value & opt_all string []
      & info [ "i"; "corpus" ] ~docv:"BYTES" ~doc:"Initial seed input (repeatable).")
  in
  let action file execs seed corpus jobs =
    apply_jobs jobs;
    let tp = frontend_of_file file in
    let config =
      {
        Fuzz.Compdiff_afl.default_config with
        Fuzz.Compdiff_afl.max_execs = execs;
        rng_seed = seed;
        seeds = (if corpus = [] then [ "" ] else corpus);
      }
    in
    let c = Fuzz.Compdiff_afl.run ~config tp in
    Printf.printf "execs:            %d\n" c.Fuzz.Compdiff_afl.fuzz.Fuzz.Fuzzer.execs;
    Printf.printf "queue entries:    %d\n"
      (List.length c.Fuzz.Compdiff_afl.fuzz.Fuzz.Fuzzer.queue);
    Printf.printf "edges covered:    %d\n"
      c.Fuzz.Compdiff_afl.fuzz.Fuzz.Fuzzer.edges_covered;
    Printf.printf "crashes:          %d\n"
      (List.length c.Fuzz.Compdiff_afl.fuzz.Fuzz.Fuzzer.crashes);
    Printf.printf "divergent inputs: %d (%d unique)\n"
      (Compdiff.Triage.total_count c.Fuzz.Compdiff_afl.diffs)
      (Compdiff.Triage.unique_count c.Fuzz.Compdiff_afl.diffs);
    List.iter
      (fun (e : Compdiff.Triage.diff_entry) ->
        print_newline ();
        print_string
          (Compdiff.Oracle.report_to_string ~input:e.Compdiff.Triage.input
             e.Compdiff.Triage.observations))
      (Compdiff.Triage.representatives c.Fuzz.Compdiff_afl.diffs);
    if Compdiff.Triage.total_count c.Fuzz.Compdiff_afl.diffs > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Fuzz a MiniC file with CompDiff-AFL++ (Algorithm 1).")
    Term.(const action $ file_arg $ execs $ seed $ corpus $ jobs_arg)

(* --- juliet --- *)

let juliet_cmd =
  let per_cwe =
    Arg.(
      value & opt int 8
      & info [ "per-cwe" ] ~docv:"N" ~doc:"Variants per CWE (0 = full scaled suite).")
  in
  let action per_cwe jobs =
    apply_jobs jobs;
    let tests =
      if per_cwe <= 0 then Juliet.Suite.full () else Juliet.Suite.quick ~per_cwe ()
    in
    Printf.printf "evaluating %d generated Juliet-style tests...\n%!"
      (List.length tests);
    let evals = Juliet.Eval.evaluate_suite tests in
    let rows = Juliet.Eval.aggregate evals in
    List.iter
      (fun (r : Juliet.Eval.row) ->
        Printf.printf "%-36s n=%-4d CompDiff %3.0f%%  sanitizers %3.0f%%  unique %d\n"
          r.Juliet.Eval.label r.Juliet.Eval.total
          (100. *. r.Juliet.Eval.r_compdiff)
          (100. *. r.Juliet.Eval.r_san_total)
          r.Juliet.Eval.unique)
      rows;
    0
  in
  Cmd.v
    (Cmd.info "juliet" ~doc:"Evaluate tools on the generated benchmark suite.")
    Term.(const action $ per_cwe $ jobs_arg)

(* --- projects --- *)

let projects_cmd =
  let target_name =
    Arg.(
      value & opt (some string) None
      & info [ "name" ] ~docv:"PROJECT" ~doc:"Single target (default: all 23).")
  in
  let execs =
    Arg.(value & opt int 4_000 & info [ "execs" ] ~docv:"N" ~doc:"Budget per target.")
  in
  let action target_name execs jobs =
    apply_jobs jobs;
    let targets =
      match target_name with
      | None -> Projects.Registry.all
      | Some n -> (
        match Projects.Registry.by_name n with
        | Some p -> [ p ]
        | None ->
          Printf.eprintf "unknown project %s; available: %s\n" n
            (String.concat ", "
               (List.map (fun p -> p.Projects.Project.pname) Projects.Registry.all));
          exit 2)
    in
    List.iter
      (fun (p : Projects.Project.t) ->
        let r = Projects.Campaign.run_project ~max_execs:execs p in
        Printf.printf "%-12s seeded=%d found=%d\n%!" p.Projects.Project.pname
          (List.length p.Projects.Project.bugs)
          (List.length r.Projects.Campaign.found);
        List.iter
          (fun (f : Projects.Campaign.found_bug) ->
            Printf.printf "  [%s] %s (input %S)\n"
              (Projects.Project.category_to_string
                 f.Projects.Campaign.bug.Projects.Project.category)
              f.Projects.Campaign.bug.Projects.Project.bug_id
              f.Projects.Campaign.found_input)
          r.Projects.Campaign.found)
      targets;
    0
  in
  Cmd.v
    (Cmd.info "projects" ~doc:"Fuzz the synthetic real-world targets (Table 5).")
    Term.(const action $ target_name $ execs $ jobs_arg)

(* --- static --- *)

let static_cmd =
  let tool_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tool" ] ~docv:"TOOL"
          ~doc:
            "Run a single analyzer (coverity, cppcheck, infer, unstable); \
             default: all four.")
  in
  let warnings =
    Arg.(
      value & flag
      & info [ "warnings" ] ~doc:"Also print downgraded (warning) findings.")
  in
  let action file tool warnings jobs =
    apply_jobs jobs;
    let p = ast_of_file file in
    let tools =
      match tool with
      | None -> Staticcheck.Static_tools.all
      | Some n -> (
        let norm = String.lowercase_ascii n in
        match
          List.find_opt
            (fun t ->
              let name =
                String.lowercase_ascii (Staticcheck.Static_tools.name t)
              in
              name = norm || String.length norm > 0
                             && String.length name >= String.length norm
                             && String.sub name 0 (String.length norm) = norm)
            Staticcheck.Static_tools.all
        with
        | Some t -> [ t ]
        | None ->
          Printf.eprintf "unknown tool %s; available: %s\n" n
            (String.concat ", "
               (List.map Staticcheck.Static_tools.name
                  Staticcheck.Static_tools.all));
          exit 2)
    in
    let errors = ref 0 in
    List.iter
      (fun t ->
        let findings = Staticcheck.Static_tools.check t p in
        List.iter
          (fun (f : Staticcheck.Finding.t) ->
            match f.Staticcheck.Finding.severity with
            | Staticcheck.Finding.Error ->
              incr errors;
              Format.printf "%a@." Staticcheck.Finding.pp f
            | Staticcheck.Finding.Warning ->
              if warnings then Format.printf "%a@." Staticcheck.Finding.pp f)
          findings)
      tools;
    if !errors = 0 then begin
      Printf.printf "no detection-grade findings\n";
      0
    end
    else 1
  in
  Cmd.v
    (Cmd.info "static"
       ~doc:"Run the static analyzers (Table 3 tools) over a MiniC file.")
    Term.(const action $ file_arg $ tool_arg $ warnings $ jobs_arg)

(* --- profiles --- *)

let profiles_cmd =
  let action () =
    List.iter
      (fun (p : Cdcompiler.Policy.profile) ->
        Printf.printf "%-12s family=%-7s args=%s line=%s\n" p.Cdcompiler.Policy.pname
          p.Cdcompiler.Policy.family
          (match p.Cdcompiler.Policy.arg_order with
          | Cdcompiler.Policy.Left_to_right -> "left-to-right"
          | Cdcompiler.Policy.Right_to_left -> "right-to-left")
          (match p.Cdcompiler.Policy.line with
          | Cdcompiler.Policy.Ltoken -> "token"
          | Cdcompiler.Policy.Lstmt -> "statement"))
      Cdcompiler.Profiles.all;
    0
  in
  Cmd.v
    (Cmd.info "profiles" ~doc:"List the available compiler implementations.")
    Term.(const action $ const ())

let main_cmd =
  let doc = "compiler-driven differential testing for MiniC programs" in
  Cmd.group
    (Cmd.info "compdiff" ~version:"1.0.0" ~doc)
    [ compile_cmd; run_cmd; vmcheck_cmd; diff_cmd; trace_cmd; localize_cmd; fuzz_cmd; juliet_cmd; static_cmd; projects_cmd; profiles_cmd ]

let () = exit (Cmd.eval' main_cmd)
