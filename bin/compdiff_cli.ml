(* The compdiff command-line tool.

   Subcommands mirror the paper's workflow on MiniC source files:

     compdiff compile FILE -p gccx-O2 --dump-ir
     compdiff run FILE -p clangx-O3 --input 'AB'
     compdiff diff FILE --input 'AB'
     compdiff fuzz FILE --execs 5000
     compdiff juliet --per-cwe 8
     compdiff static FILE --tool unstable
     compdiff projects --name tcpdump --execs 4000
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let frontend_of_file path =
  match Minic.frontend_of_source (read_file path) with
  | Ok tp -> tp
  | Error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 2

let ast_of_file path =
  match Minic.Parser.parse_program_result (read_file path) with
  | Ok p -> p
  | Error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 2

let profile_of_name name =
  match Cdcompiler.Profiles.by_name name with
  | Some p -> p
  | None ->
    if name = "clangx-Os-buggy" then Cdcompiler.Profiles.clangx_os_buggy
    else begin
      Printf.eprintf "unknown profile %s; available: %s\n" name
        (String.concat ", "
           (List.map (fun p -> p.Cdcompiler.Policy.pname) Cdcompiler.Profiles.all));
      exit 2
    end

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* --- common args --- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file.")

let profile_arg =
  Arg.(
    value
    & opt string "gccx-O0"
    & info [ "p"; "profile" ] ~docv:"PROFILE"
        ~doc:"Compiler implementation (e.g. gccx-O0, clangx-O3).")

let input_arg =
  Arg.(
    value & opt string ""
    & info [ "input" ] ~docv:"BYTES" ~doc:"Program input (stdin bytes).")

let input_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "input-file" ] ~docv:"PATH"
        ~doc:
          "Read the program input from a file (raw bytes; overrides \
           $(b,--input)).")

let resolve_input input input_file =
  match input_file with Some path -> read_file path | None -> input

let fuel_arg =
  Arg.(
    value & opt int 200_000
    & info [ "fuel" ] ~docv:"N" ~doc:"Execution fuel (instruction budget).")

(* 0 = keep the default (COMPDIFF_JOBS or the domain count heuristic) *)
let apply_jobs n = if n > 0 then Cdutil.Pool.set_default_jobs n

(* --- the shared pipeline block: --jobs/--fuel/--profiles/--cache-mb
   (and --stats), one definition for every differential subcommand
   instead of a copy per subcommand.  Evaluating the term applies the
   job count and opens the engine session. --- *)

type common = {
  co_fuel : int option;       (* None = the subcommand's own default *)
  co_profiles : Cdcompiler.Policy.profile list;
  co_session : Engine.Session.t;
  co_stats : bool;
  co_stats_json : bool;       (* machine-readable stats (implies co_stats) *)
}

let common_term =
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:
            "Execution fuel (instruction budget); default: the \
             subcommand's own budget.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for parallel compilation/execution (default: \
             $(b,Domain.recommended_domain_count()) - 1, or the \
             $(b,COMPDIFF_JOBS) environment variable).")
  in
  let profiles =
    Arg.(
      value
      & opt (some string) None
      & info [ "profiles" ] ~docv:"P1,P2,..."
          ~doc:
            "Comma-separated implementation set (default: all ten; see \
             $(b,compdiff profiles)).")
  in
  let cache_mb =
    Arg.(
      value & opt int 128
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:
            "Engine session cache budget in MiB (compiled units, linked \
             images, observations); 0 disables caching.")
  in
  let disk_cache =
    Arg.(
      value
      & opt (some string) None
      & info [ "disk-cache" ] ~docv:"DIR"
          ~doc:
            "Persistent on-disk cache directory behind the session's \
             in-memory caches (compiled units and observations survive \
             process restarts); inert with $(b,--cache-mb) 0.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print oracle and engine-session cache statistics at the end.")
  in
  let stats_json =
    Arg.(
      value & flag
      & info [ "stats-json" ]
          ~doc:
            "Print the end-of-run statistics as JSON objects (one line for \
             the oracle, one for the session) instead of text; implies \
             $(b,--stats).")
  in
  let mk fuel jobs profiles cache_mb disk_cache stats stats_json =
    apply_jobs jobs;
    let co_profiles =
      match profiles with
      | None -> Cdcompiler.Profiles.all
      | Some s ->
        List.map profile_of_name
          (List.filter (fun n -> n <> "") (String.split_on_char ',' s))
    in
    {
      co_fuel = fuel;
      co_profiles;
      co_session = Engine.Session.create ~cache_mb ?disk_dir:disk_cache ();
      co_stats = stats || stats_json;
      co_stats_json = stats_json;
    }
  in
  Term.(
    const mk $ fuel $ jobs $ profiles $ cache_mb $ disk_cache $ stats
    $ stats_json)

let print_session_stats (c : common) =
  if c.co_stats_json then begin
    Printf.printf "%s\n"
      (Engine.Session.stats_to_json (Engine.Session.stats c.co_session));
    Printf.printf "{\"localize\": %s}\n" (Compdiff.Localize.stats_to_json ())
  end
  else begin
    print_string
      (Engine.Session.stats_to_string (Engine.Session.stats c.co_session));
    print_string (Compdiff.Localize.stats_to_string ())
  end

let print_oracle_stats ?c (s : Compdiff.Oracle.stats) =
  match (c : common option) with
  | Some c when c.co_stats_json ->
      Printf.printf "%s\n" (Compdiff.Oracle.stats_to_json s)
  | _ ->
      Printf.printf
        "oracle: %d checks, %d observations requested, %d saved by dedup, %d \
         saved by incremental escalation\n"
        s.Compdiff.Oracle.checks s.Compdiff.Oracle.vm_execs
        s.Compdiff.Oracle.dedup_saved s.Compdiff.Oracle.escalation_saved

(* --- compile --- *)

let compile_cmd =
  let dump_ir =
    Arg.(value & flag & info [ "dump-ir" ] ~doc:"Dump the IR of every function.")
  in
  let action file pname dump =
    let tp = frontend_of_file file in
    let u = Cdcompiler.Pipeline.compile (profile_of_name pname) tp in
    Printf.printf "compiled %s with %s: %d functions, %d globals\n" file
      u.Cdcompiler.Ir.impl_name
      (List.length u.Cdcompiler.Ir.funcs)
      (List.length u.Cdcompiler.Ir.globals);
    if dump then
      List.iter
        (fun (_, f) -> print_string (Cdcompiler.Ir.dump_func f))
        u.Cdcompiler.Ir.funcs;
    0
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a MiniC file with one implementation.")
    Term.(const action $ file_arg $ profile_arg $ dump_ir)

(* --- run --- *)

let run_cmd =
  let reference =
    Arg.(
      value & flag
      & info [ "reference" ]
          ~doc:
            "Use the tree-walking reference interpreter instead of the linked \
             image executor (both are byte-identical; see vmcheck).")
  in
  let action file pname input fuel reference =
    let tp = frontend_of_file file in
    let u = Cdcompiler.Pipeline.compile (profile_of_name pname) tp in
    let config = { Cdvm.Exec.default_config with Cdvm.Exec.input; fuel } in
    let r =
      if reference then Cdvm.Exec.run ~config u
      else Cdvm.Exec.run_linked ~config (Cdvm.Image.link u)
    in
    print_string r.Cdvm.Exec.stdout;
    Printf.printf "[%s: %s, fuel used %d]\n" pname
      (Cdvm.Trap.status_to_string r.Cdvm.Exec.status)
      r.Cdvm.Exec.fuel_used;
    match r.Cdvm.Exec.status with Cdvm.Trap.Exit c -> c | _ -> 1
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and execute a MiniC file.")
    Term.(const action $ file_arg $ profile_arg $ input_arg $ fuel_arg $ reference)

(* --- vmcheck --- *)

(* Differentially test the two executors against each other: every
   profile, several inputs, each input run twice through the same arena
   (so arena reuse is exercised too). *)
let vmcheck_cmd =
  let inputs_arg =
    Arg.(
      value & opt_all string []
      & info [ "input" ] ~docv:"BYTES"
          ~doc:"Input to check (repeatable; default: a small builtin set).")
  in
  let action file inputs fuel =
    let tp = frontend_of_file file in
    let inputs = if inputs = [] then [ ""; "A"; "zz9"; "\x00\xffB" ] else inputs in
    let mismatches = ref 0 in
    List.iter
      (fun (p : Cdcompiler.Policy.profile) ->
        let u = Cdcompiler.Pipeline.compile p tp in
        let img = Cdvm.Image.link u in
        let arena = Cdvm.Arena.create img in
        List.iter
          (fun input ->
            let config = { Cdvm.Exec.default_config with Cdvm.Exec.input; fuel } in
            let want = Cdvm.Exec.run ~config u in
            let check label (got : Cdvm.Exec.result) =
              if got <> want then begin
                incr mismatches;
                Printf.printf
                  "MISMATCH %s %s input %S:\n  reference: %s, fuel %d, %S\n  %s: %s, fuel %d, %S\n"
                  p.Cdcompiler.Policy.pname label input
                  (Cdvm.Trap.status_to_string want.Cdvm.Exec.status)
                  want.Cdvm.Exec.fuel_used want.Cdvm.Exec.stdout label
                  (Cdvm.Trap.status_to_string got.Cdvm.Exec.status)
                  got.Cdvm.Exec.fuel_used got.Cdvm.Exec.stdout
              end
            in
            check "linked" (Cdvm.Exec.run_linked ~config ~arena img);
            check "linked-reused" (Cdvm.Exec.run_linked ~config ~arena img))
          inputs)
      Cdcompiler.Profiles.all;
    if !mismatches = 0 then begin
      Printf.printf "vmcheck %s: %d profiles x %d inputs x 2 runs, all byte-identical\n"
        file
        (List.length Cdcompiler.Profiles.all)
        (List.length inputs);
      0
    end
    else 1
  in
  Cmd.v
    (Cmd.info "vmcheck"
       ~doc:
         "Check that the linked-image executor is byte-identical to the \
          reference interpreter on a MiniC file (all profiles, arena reuse \
          included).")
    Term.(const action $ file_arg $ inputs_arg $ fuel_arg)

(* --- diff --- *)

(* The daemon's verdicts carry (impl, output, status-string) tuples; the
   report below mirrors {!Compdiff.Oracle.report_to_string} exactly
   (same grouping, same order) so daemon and direct runs print
   byte-identical divergence reports. *)
let proto_report_to_string ~(input : string) (obs : Serve.Proto.obs list) :
    string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "=== CompDiff divergence report ===\n";
  Buffer.add_string buf
    (Printf.sprintf "input (%d bytes): %S\n" (String.length input) input);
  let by_output = Hashtbl.create 8 in
  List.iter
    (fun (o : Serve.Proto.obs) ->
      let key = (o.Serve.Proto.ob_output, o.Serve.Proto.ob_status) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_output key) in
      Hashtbl.replace by_output key (o.Serve.Proto.ob_impl :: cur))
    obs;
  Hashtbl.iter
    (fun (out, status) names ->
      Buffer.add_string buf
        (Printf.sprintf "--- %s (status %s):\n%s\n"
           (String.concat ", " (List.rev names))
           status out))
    by_output;
  Buffer.contents buf

(* Print one daemon verdict in the exact format of the local [diff]
   path; returns the matching exit code. *)
let print_proto_verdict ~(input : string) ~(nimpls : int)
    (v : Serve.Proto.verdict) : int =
  match v with
  | Serve.Proto.V_agree obs ->
      Printf.printf "all %d implementations agree (%s)\n" nimpls
        obs.Serve.Proto.ob_status;
      print_string obs.Serve.Proto.ob_output;
      0
  | Serve.Proto.V_diverge obs ->
      print_string (proto_report_to_string ~input obs);
      1

let daemon_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "daemon" ] ~docv:"SOCKET"
        ~doc:
          "Route the check through a running $(b,compdiff serve) daemon at \
           this Unix-domain socket instead of compiling locally.")

let diff_cmd =
  let strip_addr =
    Arg.(
      value & flag
      & info [ "strip-addresses" ] ~doc:"Normalize 0x... addresses before comparing.")
  in
  let action file input input_file strip daemon (c : common) =
    let input = resolve_input input input_file in
    match daemon with
    | Some socket -> (
        let source = read_file file in
        let profiles =
          List.map
            (fun (p : Cdcompiler.Policy.profile) -> p.Cdcompiler.Policy.pname)
            c.co_profiles
        in
        let cl = Serve.Client.connect socket in
        let r =
          Serve.Client.check cl ~profiles
            ~fuel:(Option.value c.co_fuel ~default:0)
            ~strip ~source ~inputs:[ input ] ()
        in
        Serve.Client.close cl;
        match r with
        | Ok [ v ] ->
            print_proto_verdict ~input ~nimpls:(List.length c.co_profiles) v
        | Ok _ ->
            Printf.eprintf "daemon returned the wrong number of verdicts\n";
            2
        | Error m ->
            Printf.eprintf "daemon error: %s\n" m;
            2)
    | None ->
        let tp = frontend_of_file file in
        let normalize =
          if strip then Compdiff.Normalize.strip_hex_addresses
          else Compdiff.Normalize.identity
        in
        let fuel = Option.value c.co_fuel ~default:200_000 in
        let o =
          Compdiff.Oracle.create ~session:c.co_session ~profiles:c.co_profiles
            ~fuel ~normalize tp
        in
        let verdict = Compdiff.Oracle.check o ~input in
        let code =
          match verdict with
          | Compdiff.Oracle.Agree obs ->
            Printf.printf "all %d implementations agree (%s)\n"
              (List.length (Compdiff.Oracle.names o))
              (Cdvm.Trap.status_to_string obs.Compdiff.Oracle.status);
            print_string obs.Compdiff.Oracle.output;
            0
          | Compdiff.Oracle.Diverge obs ->
            print_string (Compdiff.Oracle.report_to_string ~input obs);
            1
        in
        if c.co_stats then begin
          print_oracle_stats ~c (Compdiff.Oracle.stats o);
          print_session_stats c
        end;
        code
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Run one input through every implementation and compare outputs.")
    Term.(
      const action $ file_arg $ input_arg $ input_file_arg $ strip_addr
      $ daemon_arg $ common_term)

(* --- trace --- *)

let trace_limit_arg =
  Arg.(
    value
    & opt int Compdiff.Localize.default_event_limit
    & info [ "trace-limit" ] ~docv:"N"
        ~doc:"Cap on recorded observable events; excess is dropped and reported.")

let trace_cmd =
  let action file pname input fuel limit =
    let tp = frontend_of_file file in
    let u = Cdcompiler.Pipeline.compile (profile_of_name pname) tp in
    let events, status, truncated =
      Compdiff.Localize.trace ~fuel ~limit u ~input
    in
    List.iteri
      (fun i (e : Compdiff.Localize.event) ->
        Printf.printf "%4d  [%s] %S\n" i e.Compdiff.Localize.ev_fn
          e.Compdiff.Localize.ev_text)
      events;
    if truncated then
      Printf.printf "(trace truncated at %d events; raise --trace-limit)\n"
        limit;
    Printf.printf "status: %s\n" (Cdvm.Trap.status_to_string status);
    0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print the observable-event trace of one implementation's execution.")
    Term.(
      const action $ file_arg $ profile_arg $ input_arg $ fuel_arg
      $ trace_limit_arg)

(* --- localize --- *)

let localize_cmd =
  let action file input (c : common) =
    let tp = frontend_of_file file in
    let fuel = Option.value c.co_fuel ~default:200_000 in
    let o =
      Compdiff.Oracle.create ~session:c.co_session ~profiles:c.co_profiles
        ~fuel tp
    in
    match Compdiff.Oracle.check o ~input with
    | Compdiff.Oracle.Agree _ ->
      Printf.printf "no divergence on this input; nothing to localize\n";
      0
    | Compdiff.Oracle.Diverge obs -> (
      (* no explicit ~fuel: localization replays at the fuel the verdict
         was actually obtained at (it may have been escalated past the
         base budget; replaying at the base would fake a hang) *)
      match
        Compdiff.Localize.of_divergence o (Compdiff.Oracle.binaries o) obs
          ~input
      with
      | Some l ->
        print_string (Compdiff.Localize.to_string l);
        (match Compdiff.Triage.suggest_root_cause (ast_of_file file) l with
        | Some rc -> print_string (Compdiff.Triage.root_cause_to_string rc)
        | None -> ());
        1
      | None ->
        Printf.printf
          "outputs agree event-by-event; the divergence is in the termination status\n";
        1)
  in
  Cmd.v
    (Cmd.info "localize"
       ~doc:
         "Locate the first divergent observable event between two disagreeing implementations.")
    Term.(const action $ file_arg $ input_arg $ common_term)

(* --- explore --- *)

(* Non-interactive time-travel driver over recorded traces (DESIGN.md
   §15): record the diverging pair under the Steps observer (or load a
   stored .ctr trace), report the first diverging instruction, and
   replay both sides to any position. *)

let probe_json (p : Compdiff.Localize.probe option) : string =
  match p with
  | None -> "null"
  | Some p ->
    Printf.sprintf
      "{\"step\": %d, \"fn\": \"%s\", \"pc\": %d, \"line\": %s, \"kind\": \
       \"%s\", \"value\": \"%s\"}"
      p.Compdiff.Localize.pr_step
      (json_escape p.Compdiff.Localize.pr_fn)
      p.Compdiff.Localize.pr_pc
      (match p.Compdiff.Localize.pr_line with
      | Some l -> string_of_int l
      | None -> "null")
      (match p.Compdiff.Localize.pr_kind with `Reg -> "reg" | `Mem -> "mem")
      (json_escape p.Compdiff.Localize.pr_value)

(* replay to [k] and render; returns (clamped position, state) *)
let replay_state (tr : Cdtrace.t) (k : int) : int * string =
  let c = Cdtrace.cursor tr in
  Cdtrace.seek c k;
  (Cdtrace.pos c, Cdtrace.state_to_string c)

let explore_cmd =
  let file_opt_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"MiniC source file (omit when $(b,--load-trace) is given).")
  in
  let at_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "at" ] ~docv:"K"
          ~doc:
            "Replay position (steps applied) — per-trace indices; default: \
             each side's first diverging instruction.")
  in
  let back_arg =
    Arg.(
      value & opt int 0
      & info [ "back" ] ~docv:"N"
          ~doc:"Step N instructions back from the chosen position.")
  in
  let diff_arg =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Print the full replayed VM state (call stack, registers, \
             written memory) at the chosen position.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit one JSON object instead of text.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-trace" ] ~docv:"DIR"
          ~doc:
            "Save the recorded trace(s) into DIR as content-addressed .ctr \
             files, replayable later with $(b,--load-trace).")
  in
  let load_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "load-trace" ] ~docv:"PATH"
          ~doc:"Replay a stored .ctr trace instead of compiling and recording.")
  in
  let step_limit_arg =
    Arg.(
      value
      & opt int Cdtrace.default_limit
      & info [ "step-limit" ] ~docv:"N"
          ~doc:
            "Cap on recorded steps per trace; recording stops there, the \
             run itself continues.")
  in
  (* single stored trace: report + replay *)
  let explore_loaded path at back show_diff json =
    match Cdtrace.load path with
    | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      2
    | Ok tr ->
      let n = Cdtrace.length tr in
      let base = Option.value at ~default:n in
      let pos, state = replay_state tr (base - back) in
      if json then begin
        Printf.printf
          "{\"impl\": \"%s\", \"input\": \"%s\", \"status\": \"%s\", \
           \"steps\": %d, \"truncated\": %b, \"events\": %d, \"pos\": %d, \
           \"state\": \"%s\"}\n"
          (json_escape tr.Cdtrace.impl)
          (json_escape tr.Cdtrace.input)
          (json_escape (Cdvm.Trap.status_to_string tr.Cdtrace.status))
          n tr.Cdtrace.truncated
          (Array.length tr.Cdtrace.events)
          pos (json_escape state);
        0
      end
      else begin
        Printf.printf "trace: %s on input %S — %s, %d steps%s, %d events\n"
          tr.Cdtrace.impl tr.Cdtrace.input
          (Cdvm.Trap.status_to_string tr.Cdtrace.status)
          n
          (if tr.Cdtrace.truncated then " (truncated)" else "")
          (Array.length tr.Cdtrace.events);
        Printf.printf "replayed to step %d/%d:\n%s" pos n
          (if show_diff then state
           else String.sub state 0 (String.index state '\n') ^ "\n");
        0
      end
  in
  let action file input input_file at back show_diff json save load step_limit
      (c : common) =
    let input = resolve_input input input_file in
    match (load, file) with
    | Some path, _ -> explore_loaded path at back show_diff json
    | None, None ->
      Printf.eprintf "explore: need a FILE argument or --load-trace\n";
      2
    | None, Some file -> (
      let tp = frontend_of_file file in
      let fuel = Option.value c.co_fuel ~default:200_000 in
      let o =
        Compdiff.Oracle.create ~session:c.co_session ~profiles:c.co_profiles
          ~fuel tp
      in
      match Compdiff.Oracle.check o ~input with
      | Compdiff.Oracle.Agree _ ->
        if json then Printf.printf "{\"divergence\": false}\n"
        else Printf.printf "no divergence on this input; nothing to explore\n";
        0
      | Compdiff.Oracle.Diverge obs -> (
        match Compdiff.Localize.divergent_pair o obs with
        | None ->
          Printf.eprintf "divergent observations but no divergent pair\n";
          2
        | Some (name_a, name_b) ->
          let binaries = Compdiff.Oracle.binaries o in
          let find n = (n, List.assoc n binaries) in
          (* replay at the fuel the verdict was obtained at, so fuel
             verdicts (hangs) reproduce instead of faking *)
          let vfuel = Compdiff.Oracle.verdict_fuel o obs in
          let ta, tb =
            Compdiff.Localize.record_pair ~session:c.co_session ~fuel:vfuel
              ~limit:step_limit ~impl_a:(find name_a) ~impl_b:(find name_b)
              ~input ()
          in
          let d = Compdiff.Localize.deep_of_traces ta tb in
          let saved =
            match save with
            | Some dir -> [ Cdtrace.save ta ~dir; Cdtrace.save tb ~dir ]
            | None -> []
          in
          let side_pos (side : Compdiff.Localize.deep_side)
              (tr : Cdtrace.t) =
            let base =
              match (at, side.Compdiff.Localize.ds_at) with
              | Some k, _ -> k
              | None, Some p -> p.Compdiff.Localize.pr_step
              | None, None -> Cdtrace.length tr
            in
            replay_state tr (base - back)
          in
          let pa, sa = side_pos d.Compdiff.Localize.deep_a ta in
          let pb, sb = side_pos d.Compdiff.Localize.deep_b tb in
          if json then
            Printf.printf
              "{\"divergence\": true, \"impl_a\": \"%s\", \"impl_b\": \
               \"%s\", \"anchor_event\": %d, \"diverging_event\": %s, \
               \"probes\": %d, \"at_a\": %s, \"at_b\": %s, \"diff\": \
               \"%s\", \"replay\": {\"a\": {\"pos\": %d, \"steps\": %d, \
               \"state\": \"%s\"}, \"b\": {\"pos\": %d, \"steps\": %d, \
               \"state\": \"%s\"}}, \"saved\": [%s]}\n"
              (json_escape ta.Cdtrace.impl)
              (json_escape tb.Cdtrace.impl)
              d.Compdiff.Localize.anchor_event
              (match d.Compdiff.Localize.diverging_event with
              | Some e -> string_of_int e
              | None -> "null")
              d.Compdiff.Localize.probes
              (probe_json d.Compdiff.Localize.deep_a.Compdiff.Localize.ds_at)
              (probe_json d.Compdiff.Localize.deep_b.Compdiff.Localize.ds_at)
              (json_escape d.Compdiff.Localize.diff)
              pa (Cdtrace.length ta) (json_escape sa) pb (Cdtrace.length tb)
              (json_escape sb)
              (String.concat ", "
                 (List.map (fun f -> "\"" ^ json_escape f ^ "\"") saved))
          else begin
            print_string (Compdiff.Localize.deep_to_string d);
            List.iter (Printf.printf "saved trace: %s\n") saved;
            let show name tr pos state =
              Printf.printf "%s replayed to step %d/%d:\n" name pos
                (Cdtrace.length tr);
              if show_diff then print_string state
              else
                print_string
                  (String.sub state 0 (String.index state '\n') ^ "\n")
            in
            show ta.Cdtrace.impl ta pa sa;
            show tb.Cdtrace.impl tb pb sb
          end;
          if c.co_stats then begin
            print_oracle_stats ~c (Compdiff.Oracle.stats o);
            print_session_stats c
          end;
          1))
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Time-travel a divergence: record the diverging pair at \
          instruction granularity, pin the first diverging instruction, \
          and replay either side to any step.")
    Term.(
      const action $ file_opt_arg $ input_arg $ input_file_arg $ at_arg
      $ back_arg $ diff_arg $ json_arg $ save_arg $ load_arg $ step_limit_arg
      $ common_term)

(* --- reduce --- *)

(* The §5 reporting pipeline: take diverging inputs (given explicitly,
   or found by a short fuzz campaign), shrink each with the
   oracle-validated reducer, and print reduced reproducers + ratios. *)
let reduce_cmd =
  let inputs_arg =
    Arg.(
      value & opt_all string []
      & info [ "input" ] ~docv:"BYTES"
          ~doc:"A diverging input to reduce (repeatable).")
  in
  let input_files_arg =
    Arg.(
      value & opt_all file []
      & info [ "input-file" ] ~docv:"PATH"
          ~doc:"Read a diverging input from a file (raw bytes; repeatable).")
  in
  let execs =
    Arg.(
      value & opt int 1_500
      & info [ "execs" ] ~docv:"N"
          ~doc:
            "Fuzzing budget used to find divergences when no $(b,--input) \
             is given.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"PATH"
          ~doc:
            "Write the first reduced input to PATH (raw bytes) and the raw \
             input it came from to PATH.orig.")
  in
  let dump_program =
    Arg.(
      value & flag
      & info [ "dump-program" ]
          ~doc:"Print the structurally reduced program when it shrank.")
  in
  let max_checks =
    Arg.(
      value & opt int 1_000
      & info [ "max-checks" ] ~docv:"N"
          ~doc:"Oracle-validation budget per divergence.")
  in
  let action file inputs input_files execs out dump_program max_checks
      (c : common) =
    let fuel = Option.value c.co_fuel ~default:200_000 in
    let tp = frontend_of_file file in
    let ast = ast_of_file file in
    let explicit = inputs @ List.map read_file input_files in
    (* (oracle, raw input, observations) per divergence *)
    let oracle, divergences =
      if explicit <> [] then begin
        let oracle =
          Compdiff.Oracle.create ~session:c.co_session
            ~profiles:c.co_profiles ~fuel tp
        in
        let divs =
          List.filter_map
            (fun input ->
              match Compdiff.Oracle.check oracle ~input with
              | Compdiff.Oracle.Diverge obs -> Some (input, obs)
              | Compdiff.Oracle.Agree _ ->
                Printf.eprintf "input %S does not diverge; skipping\n" input;
                None)
            explicit
        in
        (oracle, divs)
      end
      else begin
        let camp =
          Fuzz.Compdiff_afl.run
            ~config:
              {
                Fuzz.Compdiff_afl.default_config with
                Fuzz.Compdiff_afl.max_execs = execs;
                fuel;
                profiles = c.co_profiles;
                session = Some c.co_session;
                (* batch-reduce below instead of on save *)
                reduce_on_save = false;
              }
            tp
        in
        Printf.printf "fuzzed %d execs: %d divergent inputs, %d signatures\n"
          camp.Fuzz.Compdiff_afl.fuzz.Fuzz.Fuzzer.execs
          (Compdiff.Triage.total_count camp.Fuzz.Compdiff_afl.diffs)
          (Compdiff.Triage.unique_count camp.Fuzz.Compdiff_afl.diffs);
        ( camp.Fuzz.Compdiff_afl.oracle,
          List.map
            (fun (e : Compdiff.Triage.diff_entry) ->
              (e.Compdiff.Triage.input, e.Compdiff.Triage.observations))
            (Compdiff.Triage.representatives camp.Fuzz.Compdiff_afl.diffs) )
      end
    in
    if divergences = [] then begin
      Printf.printf "no divergence to reduce\n";
      0
    end
    else begin
      (* reductions are independent: one pool task per divergence *)
      let reduce_one (input, obs) =
        (input, Compdiff.Reduce.reduce ~max_checks ~program:ast oracle ~input obs)
      in
      let results =
        if List.length divergences > 1 && Cdutil.Pool.default_jobs () > 1 then
          Cdutil.Pool.map reduce_one divergences
        else List.map reduce_one divergences
      in
      let reduced = List.filter_map (fun (i, r) -> Option.map (fun r -> (i, r)) r) results in
      List.iteri
        (fun i (input, (r : Compdiff.Reduce.result)) ->
          let s = r.Compdiff.Reduce.red_stats in
          Printf.printf
            "divergence %d: input %d -> %d bytes (%.0f%% smaller), %d checks\n"
            (i + 1) s.Compdiff.Reduce.input_before s.Compdiff.Reduce.input_after
            (100. *. Compdiff.Reduce.input_ratio s)
            s.Compdiff.Reduce.checks;
          Printf.printf "  raw input:     %S\n" input;
          Printf.printf "  reduced input: %S\n" r.Compdiff.Reduce.red_input;
          (match r.Compdiff.Reduce.red_class.Compdiff.Reduce.cls_pair with
          | Some (a, b) -> Printf.printf "  diverges between %s and %s\n" a b
          | None -> ());
          (match r.Compdiff.Reduce.red_class.Compdiff.Reduce.cls_fn with
          | Some fn -> Printf.printf "  localized to function '%s'\n" fn
          | None -> ());
          (match r.Compdiff.Reduce.red_program with
          | Some p ->
            Printf.printf "  program: %d -> %d statements\n"
              s.Compdiff.Reduce.stmts_before s.Compdiff.Reduce.stmts_after;
            if dump_program then print_string (Minic.Pretty.program_to_string p)
          | None -> ());
          print_string
            (Compdiff.Oracle.report_to_string ~input:r.Compdiff.Reduce.red_input
               r.Compdiff.Reduce.red_observations))
        reduced;
      (match (out, reduced) with
      | Some path, (raw, (r : Compdiff.Reduce.result)) :: _ ->
        let write p s =
          let oc = open_out_bin p in
          output_string oc s;
          close_out oc
        in
        write path r.Compdiff.Reduce.red_input;
        write (path ^ ".orig") raw
      | _ -> ());
      if c.co_stats then begin
        let ratios =
          List.sort compare
            (List.map
               (fun (_, (r : Compdiff.Reduce.result)) ->
                 Compdiff.Reduce.input_ratio r.Compdiff.Reduce.red_stats)
               reduced)
        in
        let median =
          match ratios with
          | [] -> 0.
          | _ ->
            let n = List.length ratios in
            if n mod 2 = 1 then List.nth ratios (n / 2)
            else (List.nth ratios ((n / 2) - 1) +. List.nth ratios (n / 2)) /. 2.
        in
        let sum f =
          List.fold_left
            (fun a (_, (r : Compdiff.Reduce.result)) ->
              a + f r.Compdiff.Reduce.red_stats)
            0 reduced
        in
        Printf.printf
          "reduce stats: %d divergences, median input reduction %.0f%%, total \
           %d -> %d bytes, %d oracle checks\n"
          (List.length reduced)
          (100. *. median)
          (sum (fun s -> s.Compdiff.Reduce.input_before))
          (sum (fun s -> s.Compdiff.Reduce.input_after))
          (sum (fun s -> s.Compdiff.Reduce.checks));
        print_oracle_stats ~c (Compdiff.Oracle.stats oracle);
        print_session_stats c
      end;
      1
    end
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:
         "Shrink diverging inputs (and the program) into reduced \
          reproducers, validating every step through the oracle.")
    Term.(
      const action $ file_arg $ inputs_arg $ input_files_arg $ execs
      $ out_arg $ dump_program $ max_checks $ common_term)

(* --- fuzz --- *)

let fuzz_cmd =
  let execs =
    Arg.(value & opt int 5_000 & info [ "execs" ] ~docv:"N" ~doc:"Execution budget.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Fuzzer RNG seed.")
  in
  let corpus =
    Arg.(
      value & opt_all string []
      & info [ "i"; "corpus" ] ~docv:"BYTES" ~doc:"Initial seed input (repeatable).")
  in
  let action file execs seed corpus (co : common) =
    let tp = frontend_of_file file in
    let config =
      {
        Fuzz.Compdiff_afl.default_config with
        Fuzz.Compdiff_afl.max_execs = execs;
        rng_seed = seed;
        seeds = (if corpus = [] then [ "" ] else corpus);
        fuel =
          Option.value co.co_fuel
            ~default:Fuzz.Compdiff_afl.default_config.Fuzz.Compdiff_afl.fuel;
        profiles = co.co_profiles;
        session = Some co.co_session;
      }
    in
    let c = Fuzz.Compdiff_afl.run ~config tp in
    Printf.printf "execs:            %d\n" c.Fuzz.Compdiff_afl.fuzz.Fuzz.Fuzzer.execs;
    Printf.printf "queue entries:    %d\n"
      (List.length c.Fuzz.Compdiff_afl.fuzz.Fuzz.Fuzzer.queue);
    Printf.printf "edges covered:    %d\n"
      c.Fuzz.Compdiff_afl.fuzz.Fuzz.Fuzzer.edges_covered;
    Printf.printf "crashes:          %d\n"
      (List.length c.Fuzz.Compdiff_afl.fuzz.Fuzz.Fuzzer.crashes);
    Printf.printf "divergent inputs: %d (%d unique, %d reduced)\n"
      (Compdiff.Triage.total_count c.Fuzz.Compdiff_afl.diffs)
      (Compdiff.Triage.unique_count c.Fuzz.Compdiff_afl.diffs)
      (Compdiff.Triage.reduced_count c.Fuzz.Compdiff_afl.diffs);
    (* report one entry per (localized function, root cause), reduced
       reproducer first when the on-save reducer produced one *)
    List.iter
      (fun ((key, entries) :
             Compdiff.Triage.report_key * Compdiff.Triage.diff_entry list) ->
        let e = List.hd entries in
        print_newline ();
        Printf.printf "bug bucket: %s (%d signature%s)\n"
          (Compdiff.Triage.report_key_to_string key)
          (List.length entries)
          (if List.length entries = 1 then "" else "s");
        match e.Compdiff.Triage.reduced with
        | Some r ->
          Printf.printf "reduced from %d to %d bytes (%d checks)\n"
            (String.length e.Compdiff.Triage.input)
            (String.length r.Compdiff.Triage.red_input)
            r.Compdiff.Triage.red_checks;
          print_string
            (Compdiff.Oracle.report_to_string
               ~input:r.Compdiff.Triage.red_input
               r.Compdiff.Triage.red_observations)
        | None ->
          print_string
            (Compdiff.Oracle.report_to_string ~input:e.Compdiff.Triage.input
               e.Compdiff.Triage.observations))
      (Compdiff.Triage.report_buckets c.Fuzz.Compdiff_afl.diffs
         c.Fuzz.Compdiff_afl.oracle ~program:(ast_of_file file) ());
    if co.co_stats then begin
      print_oracle_stats ~c:co (Compdiff.Oracle.stats c.Fuzz.Compdiff_afl.oracle);
      print_session_stats co
    end;
    if Compdiff.Triage.total_count c.Fuzz.Compdiff_afl.diffs > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Fuzz a MiniC file with CompDiff-AFL++ (Algorithm 1).")
    Term.(const action $ file_arg $ execs $ seed $ corpus $ common_term)

(* --- juliet --- *)

let juliet_cmd =
  let per_cwe =
    Arg.(
      value & opt int 8
      & info [ "per-cwe" ] ~docv:"N" ~doc:"Variants per CWE (0 = full scaled suite).")
  in
  let action per_cwe (c : common) =
    let tests =
      if per_cwe <= 0 then Juliet.Suite.full () else Juliet.Suite.quick ~per_cwe ()
    in
    Printf.printf "evaluating %d generated Juliet-style tests...\n%!"
      (List.length tests);
    let evals =
      Juliet.Eval.evaluate_suite ~session:c.co_session ?fuel:c.co_fuel tests
    in
    let rows = Juliet.Eval.aggregate evals in
    List.iter
      (fun (r : Juliet.Eval.row) ->
        Printf.printf
          "%-36s n=%-4d CompDiff %3.0f%%  sanitizers %3.0f%%  unique %d  \
           reduce %3.0f%%\n"
          r.Juliet.Eval.label r.Juliet.Eval.total
          (100. *. r.Juliet.Eval.r_compdiff)
          (100. *. r.Juliet.Eval.r_san_total)
          r.Juliet.Eval.unique
          (100. *. r.Juliet.Eval.r_reduction))
      rows;
    if c.co_stats then begin
      print_oracle_stats ~c (Juliet.Eval.sum_oracle_stats evals);
      print_session_stats c
    end;
    0
  in
  Cmd.v
    (Cmd.info "juliet" ~doc:"Evaluate tools on the generated benchmark suite.")
    Term.(const action $ per_cwe $ common_term)

(* --- gen: labeled clean/injected corpus --- *)

let gen_cmd =
  let count =
    Arg.(
      value & opt int 20
      & info [ "count"; "n" ] ~docv:"N"
          ~doc:"Number of clean/injected program pairs to generate.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S"
          ~doc:"Base generator seed; pair $(i,i) uses seed S+$(i,i).")
  in
  let cls_arg =
    let cls_conv =
      Arg.enum
        (List.map (fun k -> (Gen.Inject.class_name k, k)) Gen.Inject.all_classes)
    in
    Arg.(
      value
      & opt (some cls_conv) None
      & info [ "class" ] ~docv:"CLASS"
          ~doc:
            "Inject only this defect class (default: cycle through all \
             five). One of $(b,signed-overflow), $(b,uninit-read), \
             $(b,oob-index), $(b,ptr-compare), $(b,div-by-zero).")
  in
  let report_flag =
    Arg.(
      value & flag
      & info [ "report" ]
          ~doc:
            "Sweep every pair through the oracle, the sanitizer models and \
             the static tools, and print the measured per-tool TP/FP/FN \
             table against the injector's ground truth.")
  in
  let out_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Write each pair's sources ($(b,clean_S.c), $(b,inj_S.c)) and a \
             ground-truth $(b,labels.tsv) (seed, class, defect line) into \
             DIR.")
  in
  let fuzz_execs =
    Arg.(
      value & opt int 0
      & info [ "fuzz" ] ~docv:"M"
          ~doc:
            "Additionally run an M-execution CompDiff-AFL++ campaign on \
             each injected twin, seeded with the pair's structured inputs, \
             and report how many campaigns reach the planted divergence \
             (0 disables).")
  in
  let action count seed cls report_flag out fuzz_execs (c : common) =
    let results =
      List.init (max 0 count) (fun i -> Gen.Corpus.make ?cls ~seed:(seed + i) ())
    in
    let pairs = List.filter_map Result.to_option results in
    let failures =
      List.filter_map (function Error m -> Some m | Ok _ -> None) results
    in
    List.iter (fun m -> Printf.eprintf "generation failure: %s\n" m) failures;
    Printf.printf "generated %d/%d labeled pairs (base seed %d)\n%!"
      (List.length pairs) count seed;
    (match out with
    | None -> ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let labels = Buffer.create 256 in
      Buffer.add_string labels "seed\tclass\tline\tclean\tinjected\n";
      List.iter
        (fun (p : Gen.Corpus.pair) ->
          let write name contents =
            let oc = open_out (Filename.concat dir name) in
            output_string oc contents;
            close_out oc
          in
          let cn = Printf.sprintf "clean_%d.c" p.Gen.Corpus.seed in
          let inn = Printf.sprintf "inj_%d.c" p.Gen.Corpus.seed in
          write cn p.Gen.Corpus.clean_src;
          write inn p.Gen.Corpus.inj_src;
          Printf.bprintf labels "%d\t%s\t%d\t%s\t%s\n" p.Gen.Corpus.seed
            (Gen.Inject.class_name p.Gen.Corpus.cls)
            p.Gen.Corpus.line cn inn)
        pairs;
      let oc = open_out (Filename.concat dir "labels.tsv") in
      Buffer.output_buffer oc labels;
      close_out oc;
      Printf.printf "wrote sources and labels.tsv to %s\n%!" dir);
    let clean_divergences =
      if report_flag then begin
        let evals =
          Gen.Corpus.evaluate ~session:c.co_session
            ~jobs:(Cdutil.Pool.default_jobs ()) ?fuel:c.co_fuel pairs
        in
        let r = Gen.Corpus.report ~gen_failures:(List.length failures) evals in
        print_string (Gen.Corpus.report_to_string r);
        r.Gen.Corpus.clean_divergences
      end
      else 0
    in
    if fuzz_execs > 0 then begin
      let found =
        List.length
          (List.filter
             (Gen.Corpus.fuzz_divergence ~max_execs:fuzz_execs)
             pairs)
      in
      Printf.printf
        "fuzz: %d/%d campaigns reached the planted divergence (%d execs \
         each)\n%!"
        found (List.length pairs) fuzz_execs
    end;
    if c.co_stats then print_session_stats c;
    if failures <> [] || clean_divergences > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate a labeled corpus of UB-free/injected program pairs and \
          score every tool against the ground truth.")
    Term.(
      const action $ count $ seed $ cls_arg $ report_flag $ out_dir
      $ fuzz_execs $ common_term)

(* --- projects --- *)

let projects_cmd =
  let target_name =
    Arg.(
      value & opt (some string) None
      & info [ "name" ] ~docv:"PROJECT" ~doc:"Single target (default: all 23).")
  in
  let execs =
    Arg.(value & opt int 4_000 & info [ "execs" ] ~docv:"N" ~doc:"Budget per target.")
  in
  let action target_name execs (c : common) =
    let targets =
      match target_name with
      | None -> Projects.Registry.all
      | Some n -> (
        match Projects.Registry.by_name n with
        | Some p -> [ p ]
        | None ->
          Printf.eprintf "unknown project %s; available: %s\n" n
            (String.concat ", "
               (List.map (fun p -> p.Projects.Project.pname) Projects.Registry.all));
          exit 2)
    in
    let results =
      List.map
        (fun (p : Projects.Project.t) ->
          let r =
            Projects.Campaign.run_project ~session:c.co_session
              ~max_execs:execs p
          in
          Printf.printf "%-12s seeded=%d found=%d\n%!" p.Projects.Project.pname
            (List.length p.Projects.Project.bugs)
            (List.length r.Projects.Campaign.found);
          List.iter
            (fun (f : Projects.Campaign.found_bug) ->
              Printf.printf "  [%s] %s (input %S)\n"
                (Projects.Project.category_to_string
                   f.Projects.Campaign.bug.Projects.Project.category)
                f.Projects.Campaign.bug.Projects.Project.bug_id
                f.Projects.Campaign.found_input)
            r.Projects.Campaign.found;
          r)
        targets
    in
    let s = Projects.Campaign.summarize_reductions results in
    if s.Projects.Campaign.rs_divergences > 0 then
      Printf.printf
        "reduced %d divergence reproducers: %d -> %d bytes, median reduction \
         %.0f%% (%d oracle checks)\n"
        s.Projects.Campaign.rs_divergences s.Projects.Campaign.rs_raw_bytes
        s.Projects.Campaign.rs_reduced_bytes
        (100. *. s.Projects.Campaign.rs_median_ratio)
        s.Projects.Campaign.rs_checks;
    if c.co_stats then print_session_stats c;
    0
  in
  Cmd.v
    (Cmd.info "projects" ~doc:"Fuzz the synthetic real-world targets (Table 5).")
    Term.(const action $ target_name $ execs $ common_term)

(* --- static --- *)

let static_cmd =
  let tool_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tool" ] ~docv:"TOOL"
          ~doc:
            "Run a single analyzer (coverity, cppcheck, infer, unstable); \
             default: all four.")
  in
  let warnings =
    Arg.(
      value & flag
      & info [ "warnings" ] ~doc:"Also print downgraded (warning) findings.")
  in
  let cross =
    Arg.(
      value & flag
      & info [ "cross" ]
          ~doc:
            "Fold identical (line, kind) findings from different tools into \
             one cross-tool row.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit machine-readable JSON findings.")
  in
  let action file tool warnings cross json (_ : common) =
    let p = ast_of_file file in
    let tools =
      match tool with
      | None -> Staticcheck.Static_tools.all
      | Some n -> (
        let norm = String.lowercase_ascii n in
        match
          List.find_opt
            (fun t ->
              let name =
                String.lowercase_ascii (Staticcheck.Static_tools.name t)
              in
              name = norm || String.length norm > 0
                             && String.length name >= String.length norm
                             && String.sub name 0 (String.length norm) = norm)
            Staticcheck.Static_tools.all
        with
        | Some t -> [ t ]
        | None ->
          Printf.eprintf "unknown tool %s; available: %s\n" n
            (String.concat ", "
               (List.map Staticcheck.Static_tools.name
                  Staticcheck.Static_tools.all));
          exit 2)
    in
    let finding_json ?tools (f : Staticcheck.Finding.t) =
      Printf.sprintf
        "{\"tool\": \"%s\", \"kind\": \"%s\", \"line\": %d, \"severity\": \
         \"%s\", \"message\": \"%s\"%s}"
        (json_escape f.Staticcheck.Finding.tool)
        (Staticcheck.Finding.kind_to_string f.Staticcheck.Finding.kind)
        f.Staticcheck.Finding.line
        (Staticcheck.Finding.severity_to_string f.Staticcheck.Finding.severity)
        (json_escape f.Staticcheck.Finding.message)
        (match tools with
        | None -> ""
        | Some ts ->
          Printf.sprintf ", \"agreed_by\": [%s]"
            (String.concat ", "
               (List.map
                  (fun t ->
                    Printf.sprintf "\"%s\"" (Staticcheck.Static_tools.name t))
                  ts)))
    in
    let errors = ref 0 in
    let json_rows = ref [] in
    if cross then
      (* one row per (kind, line) across every tool *)
      List.iter
        (fun (cx : Staticcheck.Static_tools.cross) ->
          let f = cx.Staticcheck.Static_tools.cx_finding in
          let is_error =
            f.Staticcheck.Finding.severity = Staticcheck.Finding.Error
          in
          if is_error then incr errors;
          if is_error || warnings then
            if json then
              json_rows :=
                finding_json ~tools:cx.Staticcheck.Static_tools.cx_tools f
                :: !json_rows
            else
              print_endline (Staticcheck.Static_tools.cross_to_string cx))
        (Staticcheck.Static_tools.check_all p)
    else
      List.iter
        (fun t ->
          let findings = Staticcheck.Static_tools.check t p in
          List.iter
            (fun (f : Staticcheck.Finding.t) ->
              let is_error =
                f.Staticcheck.Finding.severity = Staticcheck.Finding.Error
              in
              if is_error then incr errors;
              if is_error || warnings then
                if json then json_rows := finding_json f :: !json_rows
                else Format.printf "%a@." Staticcheck.Finding.pp f)
            findings)
        tools;
    if json then
      Printf.printf "{\"file\": \"%s\", \"findings\": [%s]}\n"
        (json_escape file)
        (String.concat ", " (List.rev !json_rows))
    else if !errors = 0 then Printf.printf "no detection-grade findings\n";
    if !errors = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "static"
       ~doc:"Run the static analyzers (Table 3 tools) over a MiniC file.")
    Term.(
      const action $ file_arg $ tool_arg $ warnings $ cross $ json
      $ common_term)

(* --- metacheck --- *)

let metacheck_cmd =
  let file_opt =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "MiniC source file to meta-check; when omitted the generated \
             Juliet-style suite is used.")
  in
  let inputs_arg =
    Arg.(
      value & opt_all string []
      & info [ "input" ] ~docv:"STR"
          ~doc:"Program input for dynamic checking (repeatable; default: one \
                empty input).")
  in
  let per_cwe =
    Arg.(
      value & opt int 1
      & info [ "per-cwe" ] ~docv:"N"
          ~doc:"Juliet mode: variants per CWE (default 1).")
  in
  let limit =
    Arg.(
      value & opt int 2
      & info [ "limit" ] ~docv:"N"
          ~doc:"Preserving twins per transformation rule (default 2).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit machine-readable JSON flags.")
  in
  let flag_json (f : Metacheck.Driver.flag) =
    Printf.sprintf
      "{\"tool\": \"%s\", \"rule\": \"%s\", \"what\": \"%s\", \"kind\": %s, \
       \"detail\": \"%s\"}"
      (json_escape f.Metacheck.Driver.fl_tool)
      (json_escape f.Metacheck.Driver.fl_rule)
      (Metacheck.Driver.what_to_string f.Metacheck.Driver.fl_what)
      (match f.Metacheck.Driver.fl_kind with
      | Some k ->
        Printf.sprintf "\"%s\"" (Staticcheck.Finding.kind_to_string k)
      | None -> "null")
      (json_escape f.Metacheck.Driver.fl_detail)
  in
  let result_json (r : Metacheck.Driver.result) =
    Printf.sprintf
      "{\"name\": \"%s\", \"preserving\": %d, \"eliminating\": %d, \
       \"retype_failures\": %d, \"flags\": [%s]}"
      (json_escape r.Metacheck.Driver.mc_name)
      r.Metacheck.Driver.mc_preserving r.Metacheck.Driver.mc_eliminating
      (List.length r.Metacheck.Driver.mc_retype_failures)
      (String.concat ", " (List.map flag_json r.Metacheck.Driver.mc_flags))
  in
  let action file_opt inputs per_cwe limit json (c : common) =
    let programs =
      match file_opt with
      | Some file ->
        let inputs = if inputs = [] then [ "" ] else inputs in
        [ (file, frontend_of_file file, inputs) ]
      | None ->
        let tests = Juliet.Suite.quick ~per_cwe:(max 1 per_cwe) () in
        if not json then
          Printf.printf "meta-checking %d generated Juliet-style tests...\n%!"
            (List.length tests);
        List.map
          (fun (t : Juliet.Testcase.t) ->
            ( t.Juliet.Testcase.name,
              Juliet.Testcase.frontend_bad t,
              t.Juliet.Testcase.inputs ))
          tests
    in
    let results =
      List.map
        (fun (name, tp, inputs) ->
          let r =
            Metacheck.Driver.analyze ~session:c.co_session
              ~profiles:c.co_profiles ?fuel:c.co_fuel ~limit ~name tp ~inputs
          in
          if not json then print_string (Metacheck.Driver.result_to_string r);
          r)
        programs
    in
    let tally = Compdiff.Triage.Tally.create () in
    List.iter
      (fun (r : Metacheck.Driver.result) ->
        List.iter
          (fun (f : Metacheck.Driver.flag) ->
            let bucket =
              match f.Metacheck.Driver.fl_kind with
              | Some k -> Compdiff.Triage.table5_label k
              | None -> "(divergence)"
            in
            Compdiff.Triage.Tally.bump tally ~tool:f.Metacheck.Driver.fl_tool
              ~bucket
              (match f.Metacheck.Driver.fl_what with
              | Metacheck.Driver.Fp -> `Fp
              | Metacheck.Driver.Fn_instability -> `Fn
              | Metacheck.Driver.Xval_fn -> `Xfn
              | Metacheck.Driver.Drift -> `Drift))
          r.Metacheck.Driver.mc_flags)
      results;
    let total f = List.fold_left (fun n r -> n + f r) 0 results in
    let preserving = total (fun r -> r.Metacheck.Driver.mc_preserving) in
    let eliminating = total (fun r -> r.Metacheck.Driver.mc_eliminating) in
    let failures =
      total (fun r -> List.length r.Metacheck.Driver.mc_retype_failures)
    in
    if json then
      Printf.printf
        "{\"programs\": %d, \"preserving\": %d, \"eliminating\": %d, \
         \"retype_failures\": %d, \"results\": [%s]}\n"
        (List.length results) preserving eliminating failures
        (String.concat ", " (List.map result_json results))
    else begin
      Printf.printf "\nprograms: %d\n" (List.length results);
      Printf.printf "preserving twins: %d\n" preserving;
      Printf.printf "eliminating twins: %d\n" eliminating;
      Printf.printf "retype failures: %d\n" failures;
      print_newline ();
      print_string (Compdiff.Triage.Tally.to_string tally);
      let t = Compdiff.Triage.Tally.total tally in
      Printf.printf
        "\ntotals: %d FP, %d FN-instability, %d cross-validated FN, %d drift\n"
        t.Compdiff.Triage.Tally.fp t.Compdiff.Triage.Tally.fn
        t.Compdiff.Triage.Tally.xfn t.Compdiff.Triage.Tally.drift
    end;
    if c.co_stats then print_session_stats c;
    if failures > 0 then 2 else 0
  in
  Cmd.v
    (Cmd.info "metacheck"
       ~doc:
         "Metamorphic meta-checking: turn the differential oracle on the \
          sanitizers and static analyzers.")
    Term.(
      const action $ file_opt $ inputs_arg $ per_cwe $ limit $ json
      $ common_term)

(* --- serve / connect --- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let quota =
    Arg.(
      value & opt int 32
      & info [ "quota" ] ~docv:"N"
          ~doc:
            "Max outstanding work requests per client; beyond it requests \
             are answered $(b,busy) immediately (credit-based backpressure).")
  in
  let executors =
    Arg.(
      value & opt int 2
      & info [ "executors" ] ~docv:"N"
          ~doc:"Worker threads draining the request queue.")
  in
  let max_oracles =
    Arg.(
      value & opt int 32
      & info [ "max-oracles" ] ~docv:"N"
          ~doc:
            "Warm compiled-oracle table bound (LRU-evicted beyond this).")
  in
  let idle_timeout =
    Arg.(
      value & opt float 0.
      & info [ "idle-timeout" ] ~docv:"SEC"
          ~doc:
            "Exit once the daemon has had no clients and no work for this \
             long (0 = run forever).")
  in
  let client_timeout =
    Arg.(
      value & opt float 0.
      & info [ "client-timeout" ] ~docv:"SEC"
          ~doc:
            "Disconnect clients with no traffic (data or ping) for this \
             long (0 = no limit).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress connection logging.")
  in
  let action socket quota executors max_oracles idle_timeout client_timeout
      quiet (c : common) =
    let cfg =
      {
        Serve.Server.socket_path = socket;
        sched =
          {
            Serve.Scheduler.session = c.co_session;
            quota;
            executors;
            max_oracles;
            default_fuel = Option.value c.co_fuel ~default:200_000;
            default_profiles = c.co_profiles;
          };
        client_timeout;
        idle_timeout;
        quiet;
      }
    in
    let srv = Serve.Server.create cfg in
    Serve.Server.serve srv;
    if c.co_stats then begin
      print_oracle_stats ~c
        (Serve.Scheduler.oracle_stats (Serve.Server.sched srv));
      print_session_stats c
    end;
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the differential oracle as a persistent daemon on a \
          Unix-domain socket: concurrent clients share one warm engine \
          session, same-program checks coalesce into batched flights, and \
          per-client quotas shed overload.")
    Term.(
      const action $ socket_arg $ quota $ executors $ max_oracles
      $ idle_timeout $ client_timeout $ quiet $ common_term)

let connect_cmd =
  let file_opt =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"MiniC source file (required except with --ping/--remote-stats).")
  in
  let ping =
    Arg.(
      value & flag
      & info [ "ping" ] ~doc:"Just ping the daemon and report liveness.")
  in
  let remote_stats =
    Arg.(
      value & flag
      & info [ "remote-stats" ]
          ~doc:
            "Print the daemon's live statistics (session caches, warm \
             oracles, scheduler counters, per-client queues) as JSON.")
  in
  let strip_addr =
    Arg.(
      value & flag
      & info [ "strip-addresses" ] ~doc:"Normalize 0x... addresses before comparing.")
  in
  let fuel =
    Arg.(
      value & opt int 0
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Execution fuel (0 = the daemon's default).")
  in
  let profiles =
    Arg.(
      value
      & opt (some string) None
      & info [ "profiles" ] ~docv:"P1,P2,..."
          ~doc:"Comma-separated implementation set (default: the daemon's).")
  in
  let fuzz_execs =
    Arg.(
      value & opt int 0
      & info [ "fuzz-execs" ] ~docv:"N"
          ~doc:"Run a fuzzing campaign of N executions on the daemon.")
  in
  let metacheck =
    Arg.(
      value & flag
      & info [ "metacheck" ]
          ~doc:"Run a metamorphic meta-check of the file on the daemon.")
  in
  let reduce =
    Arg.(
      value & flag
      & info [ "reduce" ]
          ~doc:
            "Check $(b,--input) and, if it diverges, reduce it on the \
             daemon.")
  in
  let explore =
    Arg.(
      value & flag
      & info [ "explore" ]
          ~doc:
            "Check $(b,--input) and, if it diverges, localize the first \
             diverging instruction on the daemon (Steps-level trace \
             alignment).")
  in
  let action socket file input input_file strip fuel profiles ping
      remote_stats fuzz_execs metacheck reduce explore =
    let input = resolve_input input input_file in
    let profile_names =
      match profiles with
      | None -> []
      | Some s -> List.filter (fun n -> n <> "") (String.split_on_char ',' s)
    in
    let cl = Serve.Client.connect socket in
    let finally () = Serve.Client.close cl in
    Fun.protect ~finally (fun () ->
        if ping then
          if Serve.Client.ping cl then begin
            print_endline "pong";
            0
          end
          else begin
            Printf.eprintf "no pong\n";
            2
          end
        else if remote_stats then (
          match Serve.Client.stats cl with
          | Some s ->
              print_endline (Serve.Client.stats_to_json s);
              0
          | None ->
              Printf.eprintf "stats request failed\n";
              2)
        else
          let source =
            match file with
            | Some path -> read_file path
            | None ->
                Printf.eprintf "FILE required (or --ping/--remote-stats)\n";
                exit 2
          in
          if fuzz_execs > 0 then (
            match
              Serve.Client.call cl
                (Serve.Proto.Fuzz
                   {
                     Serve.Proto.fz_source = source;
                     fz_execs = fuzz_execs;
                     fz_seed = 1;
                     fz_seeds = (if input = "" then [] else [ input ]);
                     fz_profiles = profile_names;
                     fz_fuel = fuel;
                   })
            with
            | Serve.Proto.Fuzz_reply r ->
                Printf.printf "%d execs, %d divergent, %d unique\n"
                  r.Serve.Proto.fr_execs r.Serve.Proto.fr_divergent
                  r.Serve.Proto.fr_unique;
                List.iter
                  (fun (_, report) -> print_string report)
                  r.Serve.Proto.fr_reports;
                if r.Serve.Proto.fr_unique > 0 then 1 else 0
            | Serve.Proto.Err m ->
                Printf.eprintf "daemon error: %s\n" m;
                2
            | Serve.Proto.Busy _ ->
                Printf.eprintf "daemon busy\n";
                2
            | _ ->
                Printf.eprintf "unexpected response\n";
                2)
          else if metacheck then (
            match
              Serve.Client.call cl
                (Serve.Proto.Metacheck
                   {
                     Serve.Proto.mc_source = source;
                     mc_inputs = (if input = "" then [] else [ input ]);
                     mc_limit = 4;
                     mc_profiles = profile_names;
                     mc_fuel = fuel;
                   })
            with
            | Serve.Proto.Metacheck_reply r ->
                Printf.printf
                  "preserving twins: %d\neliminating twins: %d\nretype \
                   failures: %d\n"
                  r.Serve.Proto.mr_preserving r.Serve.Proto.mr_eliminating
                  r.Serve.Proto.mr_retype_failures;
                List.iter
                  (fun (tool, rule, what, detail) ->
                    Printf.printf "%s %s %s: %s\n" tool rule what detail)
                  r.Serve.Proto.mr_flags;
                0
            | Serve.Proto.Err m ->
                Printf.eprintf "daemon error: %s\n" m;
                2
            | Serve.Proto.Busy _ ->
                Printf.eprintf "daemon busy\n";
                2
            | _ ->
                Printf.eprintf "unexpected response\n";
                2)
          else if reduce then (
            match
              Serve.Client.call cl
                (Serve.Proto.Reduce
                   {
                     Serve.Proto.rd_source = source;
                     rd_input = input;
                     rd_max_checks = 2_000;
                     rd_profiles = profile_names;
                     rd_fuel = fuel;
                   })
            with
            | Serve.Proto.Reduce_reply r ->
                if not r.Serve.Proto.rr_found then begin
                  Printf.printf "input does not diverge\n";
                  0
                end
                else begin
                  Printf.printf "reduced %d -> %d bytes in %d checks\n"
                    (String.length r.Serve.Proto.rr_input)
                    (String.length r.Serve.Proto.rr_reduced)
                    r.Serve.Proto.rr_checks;
                  print_string r.Serve.Proto.rr_report;
                  1
                end
            | Serve.Proto.Err m ->
                Printf.eprintf "daemon error: %s\n" m;
                2
            | Serve.Proto.Busy _ ->
                Printf.eprintf "daemon busy\n";
                2
            | _ ->
                Printf.eprintf "unexpected response\n";
                2)
          else if explore then (
            match
              Serve.Client.explore cl ~profiles:profile_names ~fuel ~source
                ~input ()
            with
            | Ok e ->
                if not e.Serve.Proto.er_found then begin
                  if e.Serve.Proto.er_report <> "" then
                    print_endline e.Serve.Proto.er_report
                  else Printf.printf "input does not diverge\n";
                  0
                end
                else begin
                  print_string e.Serve.Proto.er_report;
                  1
                end
            | Error m ->
                Printf.eprintf "daemon error: %s\n" m;
                2)
          else
            let nimpls =
              match profile_names with
              | [] -> List.length Cdcompiler.Profiles.all
              | l -> List.length l
            in
            match
              Serve.Client.check cl ~profiles:profile_names ~fuel ~strip
                ~source ~inputs:[ input ] ()
            with
            | Ok [ v ] -> print_proto_verdict ~input ~nimpls v
            | Ok _ ->
                Printf.eprintf "daemon returned the wrong number of verdicts\n";
                2
            | Error m ->
                Printf.eprintf "daemon error: %s\n" m;
                2)
  in
  Cmd.v
    (Cmd.info "connect"
       ~doc:
         "Send requests to a running $(b,compdiff serve) daemon: \
          differential checks (default), fuzz campaigns, meta-checks, \
          reductions, divergence exploration, pings and live statistics.")
    Term.(
      const action $ socket_arg $ file_opt $ input_arg $ input_file_arg
      $ strip_addr $ fuel $ profiles $ ping $ remote_stats $ fuzz_execs
      $ metacheck $ reduce $ explore)

(* --- profiles --- *)

let profiles_cmd =
  let action () =
    List.iter
      (fun (p : Cdcompiler.Policy.profile) ->
        Printf.printf "%-12s family=%-7s args=%s line=%s\n" p.Cdcompiler.Policy.pname
          p.Cdcompiler.Policy.family
          (match p.Cdcompiler.Policy.arg_order with
          | Cdcompiler.Policy.Left_to_right -> "left-to-right"
          | Cdcompiler.Policy.Right_to_left -> "right-to-left")
          (match p.Cdcompiler.Policy.line with
          | Cdcompiler.Policy.Ltoken -> "token"
          | Cdcompiler.Policy.Lstmt -> "statement"))
      Cdcompiler.Profiles.all;
    0
  in
  Cmd.v
    (Cmd.info "profiles" ~doc:"List the available compiler implementations.")
    Term.(const action $ const ())

let main_cmd =
  let doc = "compiler-driven differential testing for MiniC programs" in
  Cmd.group
    (Cmd.info "compdiff" ~version:"1.0.0" ~doc)
    [ compile_cmd; run_cmd; vmcheck_cmd; diff_cmd; gen_cmd; trace_cmd; localize_cmd; explore_cmd; reduce_cmd; fuzz_cmd; juliet_cmd; static_cmd; metacheck_cmd; projects_cmd; serve_cmd; connect_cmd; profiles_cmd ]

let () = exit (Cmd.eval' main_cmd)
